/**
 * @file
 * Tests for the REF-interval timed hammer path and the pattern-fuzzing
 * subsystem: timed DisturbanceEvent coordinates, tREFI-boundary
 * pressure reset, the interval activation budget, the TRR-sampler
 * arms-race acceptance property (uniform suppressed, evolved pattern
 * flips cells), thread-count determinism of the evolutionary search,
 * and the manifest plumbing of the fuzz block.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "defense/trr_sampler.hh"
#include "dram/hammer.hh"
#include "dram/module.hh"
#include "fuzz/fuzzer.hh"
#include "fuzz/pattern.hh"
#include "runtime/thread_pool.hh"
#include "sim/campaign.hh"
#include "sim/machine.hh"
#include "sim/scenario.hh"

namespace ctamem {
namespace {

std::string
repoPath(const std::string &relative)
{
    return std::string(CTAMEM_SOURCE_DIR) + "/" + relative;
}

dram::DramConfig
timedConfig()
{
    dram::DramConfig config;
    config.capacity = 64 * MiB;
    config.rowBytes = 128 * KiB;
    config.banks = 1;
    config.errors.pf = 5e-3; // boosted so victim rows have many flips
    config.seed = 7;
    return config;
}

/** Fill a whole row with one byte value. */
void
fillRow(dram::DramModule &module, std::uint64_t row,
        std::uint8_t value)
{
    std::vector<std::uint8_t> buffer(module.geometry().rowBytes(),
                                     value);
    module.write(row * module.geometry().rowBytes(), buffer.data(),
                 buffer.size());
}

/** Observer that records every DisturbanceEvent it sees. */
class CaptureObserver : public dram::DisturbanceObserver
{
  public:
    bool
    onHammer(const dram::DisturbanceEvent &event) override
    {
        events.push_back(event);
        return false;
    }

    std::vector<dram::DisturbanceEvent> events;
};

/** The trr-arms-race manifest cell as an in-process fuzz target. */
fuzz::FuzzTarget
armsRaceTarget()
{
    fuzz::FuzzTarget target;
    target.dram.capacity = 64 * MiB;
    target.dram.rowBytes = 128 * KiB;
    target.dram.banks = 1;
    target.dram.errors.pf = 1e-3;
    target.dram.seed = 1234;
    target.bank = 0;
    target.baseRow = 8;
    target.makeObserver = [] {
        return std::make_unique<defense::TrrSamplerObserver>(
            1, 2, deriveSeed(1234, seeds::kTrrSamplerStream));
    };
    return target;
}

fuzz::FuzzParams
armsRaceParams()
{
    fuzz::FuzzParams params;
    params.population = 12;
    params.generations = 6;
    params.windows = 1;
    params.timing.refsPerWindow = 1024;
    params.timing.actsPerInterval = 1300;
    params.builder.arenaRows = 32;
    params.builder.maxEntries = 8;
    params.builder.maxPeriod = 4;
    params.builder.maxSlots = 12;
    return params;
}

TEST(TimedHammer, EventsCarryRefClockCoordinates)
{
    dram::DramModule module(timedConfig());
    CaptureObserver observer;
    dram::RowHammerEngine engine(module, &observer);
    engine.setRefTiming({8, 64});

    dram::HammerResult result;
    engine.activate(0, 5, 10, 3, result);
    ASSERT_EQ(observer.events.size(), 1u);
    EXPECT_TRUE(observer.events[0].timed);
    EXPECT_EQ(observer.events[0].refInterval, 0u);
    EXPECT_EQ(observer.events[0].phase, 3u);
    EXPECT_EQ(observer.events[0].aggressorRow, 5u);
    EXPECT_EQ(observer.events[0].activations, 10u);

    // The interval index advances with retired REFs.
    engine.refTick(0, result);
    engine.refTick(0, result);
    EXPECT_EQ(engine.refInterval(), 2u);
    engine.activate(0, 5, 10, 0, result);
    ASSERT_EQ(observer.events.size(), 2u);
    EXPECT_EQ(observer.events[1].refInterval, 2u);

    // Untimed whole-window passes are not REF-clocked.
    engine.hammerRow(0, 5);
    ASSERT_GE(observer.events.size(), 3u);
    EXPECT_FALSE(observer.events.back().timed);
    EXPECT_EQ(observer.events.back().refInterval, 0u);
    EXPECT_EQ(observer.events.back().phase, 0u);
}

TEST(TimedHammer, RefreshSlotResetsAccumulatedPressure)
{
    // The same total activation dose, delivered (a) inside one
    // refresh window and (b) split across the victim's refresh slot,
    // must disturb differently: the intervening refresh restores full
    // charge, so each half evaluates at half intensity.
    const std::uint64_t half =
        dram::RowHammerEngine::activationsPerPass / 4;

    dram::DramModule full_module(timedConfig());
    dram::RowHammerEngine full_engine(full_module);
    full_engine.setRefTiming({4, 2 * half});
    for (std::uint64_t row = 2; row <= 6; ++row)
        fillRow(full_module, row, 0xff);
    dram::HammerResult full;
    full_engine.activate(0, 3, 2 * half, 0, full);
    full_engine.activate(0, 5, 2 * half, 1, full);
    full_engine.drainPressure(0, full);
    EXPECT_GT(full.flips10, 0u);
    EXPECT_EQ(full_engine.pendingPressureRows(), 0u);

    dram::DramModule split_module(timedConfig());
    dram::RowHammerEngine split_engine(split_module);
    split_engine.setRefTiming({4, 2 * half});
    for (std::uint64_t row = 2; row <= 6; ++row)
        fillRow(split_module, row, 0xff);
    dram::HammerResult split;
    split_engine.activate(0, 3, half, 0, split);
    split_engine.activate(0, 5, half, 1, split);
    // Victim row 4 is refreshed by the interval-0 REF (4 % 4 == 0):
    // its half-window pressure is evaluated and cleared there.
    for (int tick = 0; tick < 4; ++tick)
        split_engine.refTick(0, split);
    split_engine.activate(0, 3, half, 0, split);
    split_engine.activate(0, 5, half, 1, split);
    split_engine.drainPressure(0, split);
    EXPECT_EQ(split_engine.pendingPressureRows(), 0u);

    // Same dose, strictly fewer flips: the boundary reset is real.
    EXPECT_LT(split.flips10, full.flips10);
}

TEST(TimedHammer, PatternReplayRespectsIntervalBudget)
{
    dram::DramModule module(timedConfig());
    CaptureObserver observer;
    dram::RowHammerEngine engine(module, &observer);
    const dram::RefTiming timing{16, 100};
    engine.setRefTiming(timing);

    // Three pairs asking for 100 activations per aggressor would
    // consume 600 per interval — six times the budget.
    fuzz::HammeringPattern pattern;
    pattern.periodIntervals = 1;
    for (std::uint64_t entry = 0; entry < 3; ++entry)
        pattern.entries.push_back(
            {2 + 4 * entry, 2, 1, 0, entry, 100});

    fuzz::runPattern(engine, pattern, {0, 8, 1});

    std::map<std::uint64_t, std::uint64_t> perInterval;
    for (const dram::DisturbanceEvent &event : observer.events) {
        ASSERT_TRUE(event.timed);
        perInterval[event.refInterval] += event.activations;
    }
    ASSERT_FALSE(perInterval.empty());
    for (const auto &[interval, activations] : perInterval)
        EXPECT_LE(activations, timing.actsPerInterval)
            << "interval " << interval << " over budget";
}

TEST(TrrSampler, UniformHammerIsReliablySuppressed)
{
    sim::MachineConfig config;
    config.memBytes = 64 * MiB;
    config.defense = defense::DefenseKind::TrrSampler;
    config.trrSamplers = 1;
    config.trrWindow = 2;
    config.fuzz = armsRaceParams();
    sim::Machine machine(config);

    const attack::AttackResult result =
        machine.runAttack(sim::AttackKind::UniformHammer);
    EXPECT_EQ(result.outcome, attack::Outcome::Detected);
    EXPECT_EQ(result.flipsInduced, 0u);
}

TEST(PatternFuzzer, EvolvesATrrSamplerBypass)
{
    // The arms-race acceptance property: against a sampler that
    // reliably suppresses uniform hammering (previous test), the
    // evolutionary search still finds a pattern flipping >= 1 cell.
    fuzz::PatternFuzzer fuzzer(armsRaceTarget(), armsRaceParams());

    // The fixed REF-synchronized family is sampled (and its sandwich
    // victim target-refreshed) every interval, so it scores at most
    // stray outer-victim flips.  The search must clearly beat it.
    const fuzz::FuzzParams params = armsRaceParams();
    const fuzz::PatternBuilder builder(params.builder, params.timing);
    const std::uint64_t syncFlips =
        fuzzer.evaluate(builder.family("sync"));

    const fuzz::FuzzOutcome outcome = fuzzer.run();
    EXPECT_GE(outcome.bestFlips, 1u);
    EXPECT_GT(outcome.bestFlips, syncFlips);
    EXPECT_NE(outcome.firstBypassGeneration, ~0ULL);
    EXPECT_EQ(outcome.patternsEvaluated,
              params.population * params.generations);

    // The winning pattern replays to the same score.
    EXPECT_EQ(fuzzer.evaluate(outcome.best), outcome.bestFlips);
}

TEST(PatternFuzzer, OutcomeIsIdenticalAtAnyThreadCount)
{
    fuzz::FuzzParams params = armsRaceParams();
    params.population = 8;
    params.generations = 3;

    fuzz::PatternFuzzer serial_fuzzer(armsRaceTarget(), params);
    const fuzz::FuzzOutcome serial = serial_fuzzer.run();

    for (const unsigned threads : {1u, 4u, 8u}) {
        runtime::ThreadPool pool(threads);
        fuzz::PatternFuzzer fuzzer(armsRaceTarget(), params);
        const fuzz::FuzzOutcome outcome = fuzzer.run(&pool);
        EXPECT_EQ(outcome.best.hash(), serial.best.hash())
            << threads << " worker(s)";
        EXPECT_EQ(outcome.bestFlips, serial.bestFlips)
            << threads << " worker(s)";
        EXPECT_EQ(outcome.best, serial.best) << threads
                                             << " worker(s)";
    }
}

TEST(FuzzScenario, ArmsRaceManifestLoads)
{
    const sim::Campaign campaign = sim::Campaign::fromManifest(
        repoPath("scenarios/trr-arms-race.json"));
    EXPECT_EQ(campaign.size(), 3u);
}

TEST(FuzzScenario, MachineConfigFuzzBlockRoundTrips)
{
    sim::MachineConfig config;
    config.trrSamplers = 2;
    config.trrWindow = 3;
    config.fuzz.population = 20;
    config.fuzz.generations = 9;
    config.fuzz.windows = 2;
    config.fuzz.seed = 99;
    config.fuzz.timing.refsPerWindow = 512;
    config.fuzz.timing.actsPerInterval = 640;
    config.fuzz.builder.arenaRows = 24;
    config.fuzz.builder.maxEntries = 5;
    config.fuzz.builder.maxPeriod = 3;
    config.fuzz.builder.maxSlots = 7;

    const sim::MachineConfig parsed =
        sim::machineConfigFromJson(sim::toJson(config));
    EXPECT_EQ(parsed, config);
}

} // namespace
} // namespace ctamem
