/**
 * @file
 * Cross-cutting integration tests: multi-bank machines, interleaved
 * address schemes end to end, multi-process isolation, workload
 * suites over every defense policy, determinism of the deterministic
 * attack, and kernel bookkeeping under stress.
 */

#include <gtest/gtest.h>

#include <set>

#include "attack/drammer.hh"
#include "attack/projectzero.hh"
#include "kernel/kernel.hh"
#include "sim/machine.hh"
#include "sim/workload.hh"

namespace ctamem {
namespace {

using kernel::AllocPolicy;
using kernel::Kernel;
using kernel::KernelConfig;
using paging::PageFlags;

constexpr PageFlags rw{true, false, false};

KernelConfig
multiBankConfig(AllocPolicy policy)
{
    KernelConfig config;
    config.dram.capacity = 256 * MiB;
    config.dram.rowBytes = 128 * KiB;
    config.dram.banks = 8;
    config.dram.cellMap = dram::CellTypeMap::alternating(64);
    config.dram.errors.pf = 1e-3;
    config.dram.seed = 404;
    config.policy = policy;
    config.cta.ptpBytes = 2 * MiB;
    return config;
}

TEST(MultiBank, CtaInvariantsHoldAcrossBanks)
{
    Kernel kernel(multiBankConfig(AllocPolicy::Cta));
    const int pid = kernel.createProcess("proc");
    const VAddr base = kernel.mmapAnon(pid, 2 * MiB, rw);
    for (VAddr va = base; va < base + 2 * MiB; va += pageSize)
        ASSERT_TRUE(kernel.touchUser(pid, va));
    EXPECT_TRUE(kernel.auditTheorem().holds());
    // With bank-blocked mapping, ZONE_PTP lives in the last bank.
    for (const auto &[pfn, level] : kernel.pageTableFrames()) {
        const dram::Location loc = kernel.dram().locate(
            pfnToAddr(pfn));
        EXPECT_EQ(loc.bank, 7u);
    }
}

TEST(MultiBank, SprayAttackStillBlocked)
{
    Kernel kernel(multiBankConfig(AllocPolicy::Cta));
    dram::RowHammerEngine engine(kernel.dram());
    const attack::AttackResult result =
        attack::runProjectZero(kernel, engine);
    EXPECT_NE(result.outcome, attack::Outcome::Escalated);
    EXPECT_TRUE(kernel.auditTheorem().holds());
}

TEST(MultiBank, SprayAttackBeatsUnprotectedMultiBank)
{
    Kernel kernel(multiBankConfig(AllocPolicy::Standard));
    dram::RowHammerEngine engine(kernel.dram());
    const attack::AttackResult result =
        attack::runProjectZero(kernel, engine);
    EXPECT_EQ(result.outcome, attack::Outcome::Escalated)
        << result.detail;
}

TEST(MultiProcess, IsolationAndIndependentTables)
{
    Kernel kernel(multiBankConfig(AllocPolicy::Cta));
    const int a = kernel.createProcess("a");
    const int b = kernel.createProcess("b");
    const VAddr va = kernel.mmapAnon(a, 64 * KiB, rw);
    const VAddr vb = kernel.mmapAnon(b, 64 * KiB, rw);
    ASSERT_TRUE(kernel.writeUser(a, va, 0xa));
    ASSERT_TRUE(kernel.writeUser(b, vb, 0xb));
    // Same virtual address, different physical frames.
    EXPECT_EQ(va, vb); // bump allocators start identically
    EXPECT_NE(kernel.readUser(a, va).phys,
              kernel.readUser(b, vb).phys);
    EXPECT_EQ(kernel.readUser(a, va).value, 0xau);
    EXPECT_EQ(kernel.readUser(b, vb).value, 0xbu);
    // b cannot see a's address space (no mapping at a's other vmas).
    kernel.exitProcess(a);
    EXPECT_EQ(kernel.readUser(b, vb).value, 0xbu);
}

TEST(Workloads, FullSuitesRunUnderEveryPolicy)
{
    for (const AllocPolicy policy :
         {AllocPolicy::Standard, AllocPolicy::Cta, AllocPolicy::Catt,
          AllocPolicy::Zebram}) {
        Kernel kernel(multiBankConfig(policy));
        // One representative workload per suite keeps runtime sane.
        for (const sim::WorkloadSpec &spec :
             {sim::spec2006Suite().at(4),
              sim::phoronixSuite().at(12)}) {
            const sim::WorkloadMetrics metrics =
                sim::runWorkload(kernel, spec);
            EXPECT_GT(metrics.touches, 0u)
                << spec.name << " under policy "
                << static_cast<int>(policy);
            EXPECT_EQ(metrics.oomEvents, 0u);
        }
        EXPECT_EQ(kernel.processCount(), 0u);
    }
}

TEST(Workloads, EventCountsIdenticalAcrossCtaToggle)
{
    // The Table 4 mechanism at test granularity: identical event
    // streams, not just identical scores.
    Kernel vanilla(multiBankConfig(AllocPolicy::Standard));
    Kernel protected_kernel(multiBankConfig(AllocPolicy::Cta));
    const sim::WorkloadSpec spec = sim::spec2006Suite().at(6);
    const sim::WorkloadMetrics a = sim::runWorkload(vanilla, spec);
    const sim::WorkloadMetrics b =
        sim::runWorkload(protected_kernel, spec);
    EXPECT_EQ(a.touches, b.touches);
    EXPECT_EQ(a.pageFaults, b.pageFaults);
    EXPECT_EQ(a.pteAllocs, b.pteAllocs);
    EXPECT_EQ(a.tlbMisses, b.tlbMisses);
    EXPECT_EQ(a.mmapCalls, b.mmapCalls);
}

TEST(Drammer, FullyDeterministicRuns)
{
    auto run = [] {
        KernelConfig config = multiBankConfig(AllocPolicy::Standard);
        config.dram.banks = 1;
        Kernel kernel(config);
        dram::RowHammerEngine engine(kernel.dram());
        attack::DrammerConfig dconfig;
        dconfig.arenaPages = 512;
        return attack::runDrammer(kernel, engine, dconfig);
    };
    const attack::AttackResult a = run();
    const attack::AttackResult b = run();
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.flipsInduced, b.flipsInduced);
    EXPECT_EQ(a.hammerPasses, b.hammerPasses);
    EXPECT_EQ(a.detail, b.detail);
}

TEST(KernelStress, ManyProcessesChurnCleanly)
{
    Kernel kernel(multiBankConfig(AllocPolicy::Cta));
    const std::uint64_t free0 = kernel.phys().freeFrames();
    const std::uint64_t ptp0 = kernel.ptpZone()->freeFrames();
    for (int round = 0; round < 5; ++round) {
        std::vector<int> pids;
        for (int i = 0; i < 16; ++i) {
            const int pid = kernel.createProcess("p");
            const VAddr base = kernel.mmapAnon(pid, 128 * KiB, rw);
            for (VAddr va = base; va < base + 128 * KiB;
                 va += pageSize) {
                ASSERT_TRUE(kernel.touchUser(pid, va));
            }
            pids.push_back(pid);
        }
        for (const int pid : pids)
            kernel.exitProcess(pid);
    }
    EXPECT_EQ(kernel.phys().freeFrames(), free0);
    EXPECT_EQ(kernel.ptpZone()->freeFrames(), ptp0);
    EXPECT_EQ(kernel.pageTableBytes(), 0u);
}

TEST(RowInterleaved, MachineWorksEndToEnd)
{
    KernelConfig config = multiBankConfig(AllocPolicy::Cta);
    config.dram.scheme = dram::AddressScheme::RowInterleaved;
    Kernel kernel(config);
    const int pid = kernel.createProcess("proc");
    // 48 separate 2 MiB slots: enough leaf tables (> one DRAM row of
    // frames) to observe the bank spread.
    for (int i = 0; i < 48; ++i) {
        const VAddr base = kernel.mmapAnon(pid, pageSize, rw);
        ASSERT_TRUE(kernel.touchUser(pid, base));
    }
    EXPECT_TRUE(kernel.auditTheorem().holds());
    // Interleaving spreads consecutive table frames across banks.
    std::set<std::uint64_t> banks;
    for (const auto &[pfn, level] : kernel.pageTableFrames())
        banks.insert(kernel.dram().locate(pfnToAddr(pfn)).bank);
    EXPECT_GT(banks.size(), 1u);
}

} // namespace
} // namespace ctamem
