/**
 * @file
 * Tests for the common JSON value module: construction, checked
 * accessors, deterministic printing, parsing, and the dump/parse
 * round trip the scenario layer is built on.
 */

#include <gtest/gtest.h>

#include <limits>

#include "common/json.hh"

namespace ctamem::json {
namespace {

TEST(Json, ScalarConstructionAndAccessors)
{
    EXPECT_TRUE(Json().isNull());
    EXPECT_TRUE(Json(nullptr).isNull());
    EXPECT_TRUE(Json(true).asBool());
    EXPECT_DOUBLE_EQ(Json(1.5).asDouble(), 1.5);
    EXPECT_EQ(Json(std::uint64_t{7}).asU64(), 7u);
    EXPECT_EQ(Json(std::int64_t{-7}).asI64(), -7);
    EXPECT_EQ(Json("hi").asString(), "hi");
}

TEST(Json, NumberKindsArePreserved)
{
    EXPECT_EQ(Json(1.5).numKind(), Json::NumKind::Double);
    EXPECT_EQ(Json(std::uint64_t{1}).numKind(), Json::NumKind::U64);
    EXPECT_EQ(Json(std::int64_t{1}).numKind(), Json::NumKind::I64);
    // Integral kinds widen to double losslessly for small values.
    EXPECT_DOUBLE_EQ(Json(std::uint64_t{42}).asDouble(), 42.0);
    // An exactly-integral double narrows to u64/i64.
    EXPECT_EQ(Json(42.0).asU64(), 42u);
    EXPECT_THROW((void)Json(1.5).asU64(), JsonError);
    EXPECT_THROW((void)Json(std::int64_t{-1}).asU64(), JsonError);
}

TEST(Json, AccessorsThrowOnTypeMismatch)
{
    EXPECT_THROW((void)Json("x").asBool(), JsonError);
    EXPECT_THROW((void)Json(true).asDouble(), JsonError);
    EXPECT_THROW((void)Json().asString(), JsonError);
    EXPECT_THROW((void)Json(1.0).items(), JsonError);
    EXPECT_THROW((void)Json(1.0).members(), JsonError);
    EXPECT_THROW((void)Json().numKind(), JsonError);
}

TEST(Json, ObjectsKeepInsertionOrder)
{
    Json j = Json::object();
    j.set("zebra", 1).set("alpha", 2).set("mid", 3);
    ASSERT_EQ(j.size(), 3u);
    EXPECT_EQ(j.members()[0].key, "zebra");
    EXPECT_EQ(j.members()[1].key, "alpha");
    EXPECT_EQ(j.members()[2].key, "mid");
    // set() on an existing key overwrites in place, keeping order.
    j.set("alpha", 9);
    ASSERT_EQ(j.size(), 3u);
    EXPECT_EQ(j.members()[1].key, "alpha");
    EXPECT_EQ(j.at("alpha").asI64(), 9);
    EXPECT_TRUE(j.contains("zebra"));
    EXPECT_EQ(j.find("missing"), nullptr);
    EXPECT_THROW((void)j.at("missing"), JsonError);
}

TEST(Json, SmallLeafCompositesPrintInline)
{
    Json leaf = Json::object();
    leaf.set("value", 1.5).set("unit", "s");
    EXPECT_EQ(leaf.dump(), "{\"value\": 1.5, \"unit\": \"s\"}");

    Json arr = Json::array();
    arr.push(1).push(2).push(3);
    EXPECT_EQ(arr.dump(), "[1, 2, 3]");

    Json nested = Json::object();
    nested.set("inner", leaf);
    EXPECT_EQ(nested.dump(),
              "{\n  \"inner\": {\"value\": 1.5, \"unit\": \"s\"}\n}");
}

TEST(Json, DoublePrintingIsRoundTrippable)
{
    // Integral doubles keep a trailing ".0" so the kind survives a
    // human read; everything else is shortest-round-trip.
    EXPECT_EQ(Json(2.0).dump(), "2.0");
    EXPECT_EQ(Json(0.001).dump(), "0.001");
    EXPECT_EQ(Json(1e-4).dump(), "1e-04");
    const double pi = 3.141592653589793;
    EXPECT_EQ(Json::parse(Json(pi).dump()).asDouble(), pi);
}

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(Json::parse("null").isNull());
    EXPECT_TRUE(Json::parse("true").asBool());
    EXPECT_FALSE(Json::parse("false").asBool());
    EXPECT_EQ(Json::parse("123").numKind(), Json::NumKind::U64);
    EXPECT_EQ(Json::parse("-123").numKind(), Json::NumKind::I64);
    EXPECT_EQ(Json::parse("1.25").numKind(), Json::NumKind::Double);
    EXPECT_DOUBLE_EQ(Json::parse("1e-4").asDouble(), 1e-4);
    EXPECT_EQ(Json::parse("\"x\"").asString(), "x");
}

TEST(Json, ParsePreservesFullU64Range)
{
    const std::uint64_t max =
        std::numeric_limits<std::uint64_t>::max();
    const Json j = Json::parse("18446744073709551615");
    EXPECT_EQ(j.asU64(), max);
    EXPECT_EQ(j.dump(), "18446744073709551615");
}

TEST(Json, StringEscapes)
{
    const Json j = Json::parse(R"("a\"b\\c\n\tAé")");
    EXPECT_EQ(j.asString(), "a\"b\\c\n\tA\xc3\xa9");
    // Surrogate pair: U+1F600 as UTF-8.
    EXPECT_EQ(Json::parse(R"("😀")").asString(),
              "\xf0\x9f\x98\x80");
    // Control characters re-escape on output.
    EXPECT_EQ(Json(std::string("a\nb")).dump(), "\"a\\nb\"");
}

TEST(Json, DumpParseRoundTripIsIdentity)
{
    Json j = Json::object();
    j.set("name", "round-trip")
        .set("count", std::uint64_t{18446744073709551615ull})
        .set("delta", std::int64_t{-42})
        .set("ratio", 0.125)
        .set("on", true)
        .set("off", nullptr);
    Json arr = Json::array();
    arr.push(1).push("two").push(Json::object());
    j.set("mixed", std::move(arr));

    const Json back = Json::parse(j.dump());
    EXPECT_TRUE(back == j);
    // And printing is deterministic: same bytes both times.
    EXPECT_EQ(back.dump(), j.dump());
}

TEST(Json, NumbersCompareByValueAcrossKinds)
{
    EXPECT_TRUE(Json(2.0) == Json(std::uint64_t{2}));
    EXPECT_TRUE(Json(std::int64_t{2}) == Json(std::uint64_t{2}));
    EXPECT_FALSE(Json(2.5) == Json(std::uint64_t{2}));
}

TEST(Json, ParseErrorsCarryContext)
{
    try {
        Json::parse("{\n  \"a\": tru\n}");
        FAIL() << "expected JsonError";
    } catch (const JsonError &err) {
        EXPECT_NE(std::string(err.what()).find("line 2"),
                  std::string::npos)
            << err.what();
    }
}

TEST(Json, MalformedInputThrows)
{
    EXPECT_THROW(Json::parse(""), JsonError);
    EXPECT_THROW(Json::parse("{"), JsonError);
    EXPECT_THROW(Json::parse("[1,]"), JsonError);
    EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonError);
    EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
    EXPECT_THROW(Json::parse("01"), JsonError);
    EXPECT_THROW(Json::parse("1 2"), JsonError); // trailing garbage
    EXPECT_THROW(Json::parse("nul"), JsonError);
    EXPECT_THROW(Json::parse(R"({"a": 1, "a": 2})"), JsonError);
}

TEST(Json, DepthLimitStopsRunawayNesting)
{
    std::string deep(100, '[');
    deep += std::string(100, ']');
    EXPECT_THROW(Json::parse(deep), JsonError);
}

TEST(Json, ParseFileReportsMissingPath)
{
    try {
        Json::parseFile("/nonexistent/ctamem.json");
        FAIL() << "expected JsonError";
    } catch (const JsonError &err) {
        EXPECT_NE(
            std::string(err.what()).find("/nonexistent/ctamem.json"),
            std::string::npos)
            << err.what();
    }
}

} // namespace
} // namespace ctamem::json
