/**
 * @file
 * Equivalence properties of the mask-based disturbance engine.
 *
 * Three contracts pin the API redesign down:
 *  - the word-granular FaultModel accessors are bit-identical to 64
 *    scalar accessor calls;
 *  - the bit-parallel hammer path produces exactly the flips of the
 *    retained scalar reference implementation, cell for cell, on
 *    randomized modules and data patterns; and
 *  - every registry defense sees the same decision stream through the
 *    DisturbanceEvent observer interface that the old positional
 *    callback carried.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <tuple>
#include <vector>

#include "defense/observers.hh"
#include "defense/softtrr.hh"
#include "dram/hammer.hh"
#include "dram/module.hh"

namespace ctamem::dram {
namespace {

/** Small module so the cell-at-a-time reference stays fast. */
DramConfig
equivConfig(std::uint64_t seed, double pf)
{
    DramConfig config;
    config.capacity = 4 * MiB;
    config.rowBytes = 16 * KiB;
    config.banks = 2;
    config.cellMap = CellTypeMap::alternating(4);
    config.errors.pf = pf;
    config.seed = seed;
    return config;
}

/** Identical pseudo-random content for a row of both modules. */
void
fillRowRandom(DramModule &a, DramModule &b, std::uint64_t bank,
              std::uint64_t row, std::uint64_t pattern_seed)
{
    const std::uint64_t row_bytes = a.geometry().rowBytes();
    const Addr base =
        a.geometry().address(Location{bank, row, 0});
    std::mt19937_64 rng(pattern_seed);
    std::vector<std::uint8_t> buffer(row_bytes);
    for (auto &byte : buffer)
        byte = static_cast<std::uint8_t>(rng());
    a.write(base, buffer.data(), buffer.size());
    b.write(base, buffer.data(), buffer.size());
}

/** Events as an order-free canonical set. */
std::vector<std::tuple<Addr, unsigned, int>>
canonical(const std::vector<FlipEvent> &events)
{
    std::vector<std::tuple<Addr, unsigned, int>> out;
    out.reserve(events.size());
    for (const FlipEvent &event : events)
        out.emplace_back(event.addr, event.bit,
                         static_cast<int>(event.dir));
    std::sort(out.begin(), out.end());
    return out;
}

/** Byte-compare the full stores of two modules. */
void
expectStoresEqual(const DramModule &a, const DramModule &b)
{
    const std::uint64_t capacity = a.geometry().capacity();
    std::vector<std::uint8_t> left(64 * KiB), right(64 * KiB);
    for (std::uint64_t off = 0; off < capacity; off += left.size()) {
        a.read(off, left.data(), left.size());
        b.read(off, right.data(), right.size());
        ASSERT_EQ(left, right) << "stores diverge near 0x" << std::hex
                               << off;
    }
}

TEST(FaultWordAccessors, MatchScalarCalls)
{
    for (const std::uint64_t seed : {1ULL, 42ULL, 0xdeadULL}) {
        for (const double pf : {1e-3, 3e-2}) {
            ErrorStats stats;
            stats.pf = pf;
            const FaultModel model(seed, stats);
            for (const Addr addr :
                 {Addr{0}, Addr{8}, Addr{128 * KiB}, Addr{1} << 30}) {
                std::uint64_t vuln = 0, dir_true = 0, dir_anti = 0,
                              trip = 0;
                for (unsigned k = 0; k < 64; ++k) {
                    const Addr byte = addr + k / 8;
                    const unsigned bit = k % 8;
                    vuln |= static_cast<std::uint64_t>(
                                model.vulnerable(byte, bit))
                            << k;
                    if (!model.vulnerable(byte, bit))
                        continue;
                    dir_true |=
                        static_cast<std::uint64_t>(
                            model.flipDirection(byte, bit,
                                                CellType::True) ==
                            FlipDirection::OneToZero)
                        << k;
                    dir_anti |=
                        static_cast<std::uint64_t>(
                            model.flipDirection(byte, bit,
                                                CellType::Anti) ==
                            FlipDirection::OneToZero)
                        << k;
                    trip |= static_cast<std::uint64_t>(
                                model.tripThreshold(byte, bit) <=
                                RowHammerEngine::singleSidedIntensity)
                            << k;
                }
                EXPECT_EQ(model.vulnMaskWord(addr), vuln);
                EXPECT_EQ(model.flipDirMaskWord(addr, CellType::True,
                                                vuln),
                          dir_true);
                EXPECT_EQ(model.flipDirMaskWord(addr, CellType::Anti,
                                                vuln),
                          dir_anti);
                EXPECT_EQ(
                    model.tripMaskWord(
                        addr, RowHammerEngine::singleSidedIntensity,
                        vuln),
                    trip);
            }
        }
    }
}

TEST(FaultWordAccessors, LaneRestrictionZeroesClearedLanes)
{
    ErrorStats stats;
    stats.pf = 0.5; // dense, so lane masking is visible
    const FaultModel model(7, stats);
    const Addr addr = 4096;
    const std::uint64_t full = model.vulnMaskWord(addr);
    for (const std::uint64_t lanes :
         {0ULL, 0xffULL, 0xf0f0f0f0f0f0f0f0ULL, ~0ULL}) {
        EXPECT_EQ(model.vulnMaskWord(addr, lanes), full & lanes);
        EXPECT_EQ(model.flipDirMaskWord(addr, CellType::True, lanes) &
                      ~lanes,
                  0u);
        // Trip thresholds are independent of vulnerability; at
        // intensity 1.0 every requested lane trips.
        EXPECT_EQ(model.tripMaskWord(addr, 1.0, lanes), lanes);
    }
}

TEST(FaultWordAccessors, BulkRowScanMatchesPerWordCalls)
{
    ErrorStats stats;
    stats.pf = 2e-3;
    const FaultModel model(99, stats);
    constexpr std::size_t words = 512;
    std::vector<std::uint64_t> row(words);
    const Addr base = 3 * 128 * KiB;
    model.vulnMaskRow(base, words, row.data());
    for (std::size_t w = 0; w < words; ++w)
        ASSERT_EQ(row[w], model.vulnMaskWord(base + w * 8))
            << "word " << w;
}

TEST(HammerEquivalence, RandomizedModulesMatchScalarReference)
{
    std::mt19937_64 meta(0xe9001);
    for (int round = 0; round < 6; ++round) {
        const std::uint64_t seed = meta();
        const double pf = (round % 2) ? 5e-3 : 2e-2;
        DramModule masked(equivConfig(seed, pf));
        DramModule scalar(equivConfig(seed, pf));
        RowHammerEngine engine(masked);
        engine.setRecordEvents(true);

        const std::uint64_t bank = round % 2;
        const std::uint64_t victim = 3 + round; // span stays in range
        // Mixed data: random rows, an all-ones row, an untouched row
        // (fill-pattern flips must match too).
        for (std::uint64_t row = victim - 1; row <= victim + 2;
             ++row) {
            if (row == victim + 1)
                continue; // left untouched on purpose
            fillRowRandom(masked, scalar, bank, row, meta());
        }

        const HammerResult fast = engine.hammerDoubleSided(bank,
                                                           victim);
        const HammerResult ref =
            reference::hammerDoubleSidedScalar(scalar, bank, victim);

        EXPECT_EQ(fast.flips10, ref.flips10) << "round " << round;
        EXPECT_EQ(fast.flips01, ref.flips01) << "round " << round;
        EXPECT_EQ(canonical(fast.events), canonical(ref.events))
            << "round " << round;
        expectStoresEqual(masked, scalar);
    }
}

TEST(HammerEquivalence, SingleSidedAndRepeatedPassesMatch)
{
    DramModule masked(equivConfig(0xabcd, 1e-2));
    DramModule scalar(equivConfig(0xabcd, 1e-2));
    RowHammerEngine engine(masked);
    engine.setRecordEvents(true);
    std::mt19937_64 patterns(0xe9002);
    for (std::uint64_t row = 4; row <= 8; ++row)
        fillRowRandom(masked, scalar, 0, row, patterns());

    // Repeated passes consume flippable cells: later passes must see
    // the same shrinking flip set in both implementations.
    for (int pass = 0; pass < 3; ++pass) {
        const HammerResult fast = engine.hammerRow(0, 6);
        const HammerResult ref =
            reference::hammerRowScalar(scalar, 0, 6);
        EXPECT_EQ(fast.flips10, ref.flips10) << "pass " << pass;
        EXPECT_EQ(fast.flips01, ref.flips01) << "pass " << pass;
        EXPECT_EQ(canonical(fast.events), canonical(ref.events));
        if (pass > 0)
            EXPECT_EQ(fast.total(), 0u)
                << "single-sided flips exhaust after one pass";
    }
    expectStoresEqual(masked, scalar);
}

TEST(HammerEquivalence, RemappedRowsStayEquivalent)
{
    DramModule masked(equivConfig(0x5150, 1e-2));
    DramModule scalar(equivConfig(0x5150, 1e-2));
    // Swap like-for-like rows (alternating period 4: rows 2 and 10
    // share a cell type) in both modules before hammering.
    masked.remapRow(0, 2, 10);
    scalar.remapRow(0, 2, 10);
    RowHammerEngine engine(masked);
    engine.setRecordEvents(true);
    std::mt19937_64 patterns(0xe9003);
    for (std::uint64_t row = 0; row <= 12; ++row)
        fillRowRandom(masked, scalar, 0, row, patterns());

    const HammerResult fast = engine.hammerDoubleSided(0, 2);
    const HammerResult ref =
        reference::hammerDoubleSidedScalar(scalar, 0, 2);
    EXPECT_EQ(fast.flips10, ref.flips10);
    EXPECT_EQ(fast.flips01, ref.flips01);
    EXPECT_EQ(canonical(fast.events), canonical(ref.events));
    expectStoresEqual(masked, scalar);
}

TEST(HammerEquivalence, CompatibilityViewMatchesProfileMasks)
{
    DramModule module(equivConfig(0x77, 5e-3));
    RowHammerEngine engine(module);
    const RowVulnProfile &profile = engine.rowProfile(0, 5);
    const std::vector<VulnerableBit> bits =
        engine.vulnerableBits(0, 5);
    ASSERT_EQ(bits.size(), profile.vulnerableCells);

    // Same cells, different order: the view sorts by trip threshold.
    std::vector<std::pair<std::uint64_t, unsigned>> from_view;
    for (const VulnerableBit &bit : bits)
        from_view.emplace_back(bit.column, bit.bit);
    std::sort(from_view.begin(), from_view.end());
    std::vector<std::pair<std::uint64_t, unsigned>> from_masks;
    for (const MaskWord &word : profile.words) {
        for (std::uint64_t rest = word.vuln; rest;
             rest &= rest - 1) {
            const unsigned k = static_cast<unsigned>(
                std::countr_zero(rest));
            from_masks.emplace_back(
                static_cast<std::uint64_t>(word.word) * 8 + k / 8,
                k % 8);
        }
    }
    EXPECT_EQ(from_view, from_masks);
    EXPECT_TRUE(std::is_sorted(
        bits.begin(), bits.end(),
        [](const VulnerableBit &a, const VulnerableBit &b) {
            return a.threshold < b.threshold;
        }));
}

/** Records every DisturbanceEvent it sees; never suppresses. */
struct RecordingObserver : DisturbanceObserver
{
    std::vector<DisturbanceEvent> seen;
    bool
    onHammer(const DisturbanceEvent &event) override
    {
        seen.push_back(event);
        return false;
    }
};

TEST(ObserverMigration, EngineAnnouncesFullEvent)
{
    DramModule module(equivConfig(11, 5e-3));
    RecordingObserver observer;
    RowHammerEngine engine(module, &observer);

    // A double-sided pass announces both aggressors, each with the
    // pair's full disturbance reach.
    engine.hammerDoubleSided(1, 6);
    ASSERT_EQ(observer.seen.size(), 2u);
    EXPECT_EQ(observer.seen[0].aggressorRow, 5u);
    EXPECT_EQ(observer.seen[1].aggressorRow, 7u);
    for (const DisturbanceEvent &event : observer.seen) {
        EXPECT_EQ(event.bank, 1u);
        EXPECT_EQ(event.activations,
                  RowHammerEngine::activationsPerPass);
        EXPECT_EQ(event.victimFirst, 4u);
        EXPECT_EQ(event.victimLast, 8u);
        EXPECT_EQ(event.engine, &engine);
        // The lazy per-row summary resolves through the engine.
        EXPECT_EQ(event.vulnerableCellsIn(6),
                  engine.rowProfile(1, 6).vulnerableCells);
    }

    engine.hammerRow(0, 3);
    ASSERT_EQ(observer.seen.size(), 3u);
    EXPECT_EQ(observer.seen.back().bank, 0u);
    EXPECT_EQ(observer.seen.back().aggressorRow, 3u);
    EXPECT_EQ(observer.seen.back().victimFirst, 2u);
    EXPECT_EQ(observer.seen.back().victimLast, 4u);
}

/** Suppresses everything, like a perfect target-row refresh. */
struct SuppressingObserver : DisturbanceObserver
{
    bool
    onHammer(const DisturbanceEvent &) override
    {
        return true;
    }
};

TEST(ObserverMigration, SuppressionNeutralizesThePass)
{
    DramModule module(equivConfig(11, 5e-3));
    SuppressingObserver observer;
    RowHammerEngine engine(module, &observer);
    std::vector<std::uint8_t> ones(module.geometry().rowBytes(),
                                   0xff);
    module.write(0, ones.data(), ones.size());

    const HammerResult result = engine.hammerDoubleSided(0, 1);
    EXPECT_TRUE(result.suppressed);
    EXPECT_EQ(result.total(), 0u);
}

TEST(ObserverMigration, ParaDecidesOnActivationCount)
{
    // p = 0: no activation can trigger the neighbour refresh.
    defense::ParaObserver never(0.0);
    EXPECT_FALSE(never.onHammer({0, 10, 1'300'000, 9, 11}));
    // p = 1: the first activation already refreshes the victims.
    defense::ParaObserver always(1.0);
    EXPECT_TRUE(always.onHammer({0, 10, 1, 9, 11}));
    EXPECT_EQ(always.mitigations(), 1u);
}

TEST(ObserverMigration, RefreshBoostIgnoresRowIdentity)
{
    // factor 1: the full hammer window always fits, nothing is ever
    // suppressed no matter which row the event names.
    defense::RefreshBoostObserver none(1);
    for (std::uint64_t row = 0; row < 32; ++row)
        EXPECT_FALSE(none.onHammer({row % 4, row, 1'300'000,
                                    row ? row - 1 : 0, row + 1}));
    EXPECT_EQ(none.mitigations(), 0u);
}

TEST(ObserverMigration, AnvilAccumulatesPerAggressorRow)
{
    defense::AnvilObserver anvil(/*threshold=*/1'000'000,
                                 /*window_passes=*/100);
    // Below threshold: same row twice at 400k stays quiet...
    EXPECT_FALSE(anvil.onHammer({0, 42, 400'000, 41, 43}));
    EXPECT_FALSE(anvil.onHammer({0, 42, 400'000, 41, 43}));
    // ...a different row does not inherit the count...
    EXPECT_FALSE(anvil.onHammer({0, 43, 400'000, 42, 44}));
    // ...and the third burst on row 42 crosses it.
    EXPECT_TRUE(anvil.onHammer({0, 42, 400'000, 41, 43}));
    EXPECT_TRUE(anvil.triggered());
    EXPECT_EQ(anvil.detections(), 1u);
}

TEST(ObserverMigration, SoftTrrCountsBankRowKeys)
{
    defense::SoftTrrObserver trr(/*threshold=*/1'000'000,
                                 /*max_tracked=*/2);
    // Same device row accumulates across events until the target-row
    // refresh fires and resets the counter.
    EXPECT_FALSE(trr.onHammer({0, 7, 600'000, 6, 8}));
    EXPECT_TRUE(trr.onHammer({0, 7, 600'000, 6, 8}));
    EXPECT_EQ(trr.mitigations(), 1u);
    // Same row number in another bank is a distinct key.
    EXPECT_FALSE(trr.onHammer({1, 7, 600'000, 6, 8}));
    EXPECT_EQ(trr.trackedRows(), 2u);
    // A third key evicts the coldest slot from the full table.
    EXPECT_FALSE(trr.onHammer({0, 9, 100, 8, 10}));
    EXPECT_EQ(trr.evictions(), 1u);
}

} // namespace
} // namespace ctamem::dram
