/**
 * @file
 * Tests for the paging substrate: PTE layout, table construction,
 * the hardware-semantics walker (including corrupted-PTE behaviour),
 * large pages, and the TLB.
 */

#include <gtest/gtest.h>

#include "dram/module.hh"
#include "paging/address_space.hh"
#include "paging/mmu.hh"
#include "paging/pte.hh"
#include "paging/tlb.hh"
#include "paging/walker.hh"

namespace ctamem::paging {
namespace {

TEST(Pte, FieldRoundTrip)
{
    Pte pte = Pte::make(0x12345, PageFlags{true, true, true});
    EXPECT_TRUE(pte.present());
    EXPECT_TRUE(pte.writable());
    EXPECT_TRUE(pte.user());
    EXPECT_TRUE(pte.noExecute());
    EXPECT_FALSE(pte.pageSize());
    EXPECT_EQ(pte.pfn(), 0x12345u);

    pte.setPfn(0x777);
    EXPECT_EQ(pte.pfn(), 0x777u);
    EXPECT_TRUE(pte.present()); // flags untouched
}

TEST(Pte, PageSizeBitIsBit7)
{
    Pte pte = Pte::make(1, PageFlags{}, /*page_size=*/true);
    EXPECT_TRUE(pte.raw() & 0x80);
}

TEST(Pte, IndexExtraction)
{
    // vaddr = PML4 idx 1, PDPT idx 2, PD idx 3, PT idx 4, offset 5.
    const VAddr vaddr = (1ULL << 39) | (2ULL << 30) | (3ULL << 21) |
                        (4ULL << 12) | 5;
    EXPECT_EQ(tableIndex(vaddr, 4), 1u);
    EXPECT_EQ(tableIndex(vaddr, 3), 2u);
    EXPECT_EQ(tableIndex(vaddr, 2), 3u);
    EXPECT_EQ(tableIndex(vaddr, 1), 4u);
}

TEST(Pte, LevelCoverage)
{
    EXPECT_EQ(levelCoverage(1), 4 * KiB);
    EXPECT_EQ(levelCoverage(2), 2 * MiB);
    EXPECT_EQ(levelCoverage(3), 1 * GiB);
}

class PagingTest : public ::testing::Test
{
  protected:
    PagingTest()
    {
        dram::DramConfig config;
        config.capacity = 256 * MiB;
        config.rowBytes = 128 * KiB;
        config.banks = 1;
        module_ = std::make_unique<dram::DramModule>(config);
        // Simple bump allocator for table pages, starting at 1 MiB.
        nextTable_ = addrToPfn(1 * MiB);
        rootPfn_ = allocTable();
        space_ = std::make_unique<AddressSpace>(
            *module_,
            [this](unsigned) { return std::optional<Pfn>(allocTable()); },
            [](Pfn) {}, rootPfn_);
        walker_ = std::make_unique<PageWalker>(*module_);
    }

    Pfn
    allocTable()
    {
        const Pfn pfn = nextTable_++;
        std::vector<std::uint8_t> zeros(pageSize, 0);
        module_->write(pfnToAddr(pfn), zeros.data(), zeros.size());
        return pfn;
    }

    std::unique_ptr<dram::DramModule> module_;
    Pfn nextTable_;
    Pfn rootPfn_;
    std::unique_ptr<AddressSpace> space_;
    std::unique_ptr<PageWalker> walker_;
};

TEST_F(PagingTest, MapAndTranslate)
{
    const VAddr vaddr = 0x7f0000123000ULL;
    const Pfn frame = addrToPfn(32 * MiB);
    ASSERT_TRUE(space_->map(vaddr, frame, PageFlags{true, true}));

    const WalkResult result = walker_->walk(
        rootPfn_, vaddr + 0x123, AccessType::Read, Privilege::User);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.phys, pfnToAddr(frame) + 0x123);
    EXPECT_EQ(result.leafLevel, 1u);
    EXPECT_TRUE(result.writable);
    EXPECT_TRUE(result.user);
}

TEST_F(PagingTest, UnmappedFaults)
{
    const WalkResult result = walker_->walk(
        rootPfn_, 0x1000, AccessType::Read, Privilege::User);
    EXPECT_EQ(result.fault, Fault::NotPresent);
}

TEST_F(PagingTest, SupervisorOnlyBlocksUser)
{
    const VAddr vaddr = 0x40000000ULL;
    ASSERT_TRUE(space_->map(vaddr, addrToPfn(16 * MiB),
                            PageFlags{true, false}));
    EXPECT_EQ(walker_->walk(rootPfn_, vaddr, AccessType::Read,
                            Privilege::User).fault,
              Fault::Protection);
    EXPECT_TRUE(walker_->walk(rootPfn_, vaddr, AccessType::Read,
                              Privilege::Supervisor).ok());
}

TEST_F(PagingTest, ReadOnlyBlocksWrite)
{
    const VAddr vaddr = 0x50000000ULL;
    ASSERT_TRUE(space_->map(vaddr, addrToPfn(16 * MiB),
                            PageFlags{false, true}));
    EXPECT_TRUE(walker_->walk(rootPfn_, vaddr, AccessType::Read,
                              Privilege::User).ok());
    EXPECT_EQ(walker_->walk(rootPfn_, vaddr, AccessType::Write,
                            Privilege::User).fault,
              Fault::Protection);
}

TEST_F(PagingTest, SharedIntermediateTables)
{
    // Two pages in the same 2 MiB slot share the leaf table.
    const std::uint64_t before = space_->tablePageCount();
    ASSERT_TRUE(space_->map(0x60000000ULL, addrToPfn(16 * MiB),
                            PageFlags{true, true}));
    const std::uint64_t after_first = space_->tablePageCount();
    ASSERT_TRUE(space_->map(0x60001000ULL, addrToPfn(17 * MiB),
                            PageFlags{true, true}));
    EXPECT_EQ(space_->tablePageCount(), after_first);
    EXPECT_EQ(after_first - before, 3u); // PDPT + PD + PT
}

TEST_F(PagingTest, UnmapRemovesTranslation)
{
    const VAddr vaddr = 0x70000000ULL;
    ASSERT_TRUE(space_->map(vaddr, addrToPfn(16 * MiB),
                            PageFlags{true, true}));
    EXPECT_TRUE(space_->unmap(vaddr));
    EXPECT_EQ(walker_->walk(rootPfn_, vaddr, AccessType::Read,
                            Privilege::User).fault,
              Fault::NotPresent);
    EXPECT_FALSE(space_->unmap(vaddr));
}

TEST_F(PagingTest, LargePage2M)
{
    const VAddr vaddr = 0x80000000ULL;
    ASSERT_TRUE(space_->mapLarge(vaddr, addrToPfn(64 * MiB),
                                 PageFlags{true, true}, 2));
    const WalkResult result = walker_->walk(
        rootPfn_, vaddr + 0x12345, AccessType::Read, Privilege::User);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.leafLevel, 2u);
    EXPECT_EQ(result.phys, 64 * MiB + 0x12345);
}

TEST_F(PagingTest, CorruptedPteIsFollowed)
{
    // The heart of the attack surface: flip a bit in a PTE's frame
    // field directly in DRAM and observe the walker follow it.
    const VAddr vaddr = 0x90000000ULL;
    const Pfn frame = addrToPfn(48 * MiB);
    ASSERT_TRUE(space_->map(vaddr, frame, PageFlags{true, true}));

    const Addr pte_addr = walker_->entryAddress(rootPfn_, vaddr, 1);
    ASSERT_NE(pte_addr, 0u);
    Pte pte(module_->readU64(pte_addr));
    EXPECT_EQ(pte.pfn(), frame);

    // Clear bit 14 of the address (bit 2 of the PFN field).
    pte.setPfn(frame & ~(1ULL << 2));
    module_->writeU64(pte_addr, pte.raw());

    const WalkResult result = walker_->walk(
        rootPfn_, vaddr, AccessType::Read, Privilege::User);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.phys, pfnToAddr(frame & ~(1ULL << 2)));
}

TEST_F(PagingTest, OutOfRangePointerFaults)
{
    const VAddr vaddr = 0xa0000000ULL;
    ASSERT_TRUE(space_->map(vaddr, addrToPfn(16 * MiB),
                            PageFlags{true, true}));
    const Addr pte_addr = walker_->entryAddress(rootPfn_, vaddr, 1);
    Pte pte(module_->readU64(pte_addr));
    pte.setPfn(addrToPfn(512 * GiB)); // beyond the 256 MiB module
    module_->writeU64(pte_addr, pte.raw());
    EXPECT_EQ(walker_->walk(rootPfn_, vaddr, AccessType::Read,
                            Privilege::User).fault,
              Fault::OutOfRange);
}

TEST_F(PagingTest, EntryAddressPerLevel)
{
    const VAddr vaddr = 0xb0000000ULL;
    ASSERT_TRUE(space_->map(vaddr, addrToPfn(16 * MiB),
                            PageFlags{true, true}));
    for (unsigned level = 4; level >= 1; --level) {
        const Addr addr = walker_->entryAddress(rootPfn_, vaddr, level);
        ASSERT_NE(addr, 0u) << "level " << level;
        const Pte entry(module_->readU64(addr));
        EXPECT_TRUE(entry.present());
        if (level == 1)
            EXPECT_EQ(entry.pfn(), addrToPfn(16 * MiB));
    }
}

TEST(Tlb, HitAfterInsert)
{
    Tlb tlb(4);
    tlb.insert(TlbEntry{1, 0x10, 0x5000, true, true});
    const TlbEntry *hit = tlb.lookup(1, 0x10000 + 0x123);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->physBase, 0x5000u);
    EXPECT_EQ(tlb.stats().value("hits"), 1u);
}

TEST(Tlb, MissOnDifferentRoot)
{
    Tlb tlb(4);
    tlb.insert(TlbEntry{1, 0x10, 0x5000, true, true});
    EXPECT_EQ(tlb.lookup(2, 0x10000), nullptr);
}

TEST(Tlb, LruEviction)
{
    Tlb tlb(2);
    tlb.insert(TlbEntry{1, 1, 0x1000, true, true});
    tlb.insert(TlbEntry{1, 2, 0x2000, true, true});
    EXPECT_NE(tlb.lookup(1, 1 << pageShift), nullptr); // 1 is MRU now
    tlb.insert(TlbEntry{1, 3, 0x3000, true, true});    // evicts 2
    EXPECT_EQ(tlb.lookup(1, 2 << pageShift), nullptr);
    EXPECT_NE(tlb.lookup(1, 1 << pageShift), nullptr);
}

TEST(Tlb, FlushAll)
{
    Tlb tlb(4);
    tlb.insert(TlbEntry{1, 1, 0x1000, true, true});
    tlb.flushAll();
    EXPECT_EQ(tlb.size(), 0u);
    EXPECT_EQ(tlb.lookup(1, 1 << pageShift), nullptr);
}

TEST(Tlb, GeometryFromCapacity)
{
    Tlb tlb(64);
    EXPECT_EQ(tlb.ways(), 8u);
    EXPECT_EQ(tlb.sets(), 8u);
    EXPECT_EQ(tlb.capacity(), 64u);

    // Capacities at or under one way collapse to one LRU set.
    Tlb small(4);
    EXPECT_EQ(small.sets(), 1u);
    EXPECT_EQ(small.ways(), 4u);
}

TEST(Tlb, AliasedVpnAcrossRootsCoexist)
{
    // The same vpn under different roots must not alias: both
    // translations live side by side and resolve to their own frame.
    Tlb tlb(64);
    const VAddr vpn = 0x10;
    tlb.insert(TlbEntry{1, vpn, 0x5000, true, true});
    tlb.insert(TlbEntry{2, vpn, 0x9000, true, true});
    EXPECT_EQ(tlb.size(), 2u);

    const TlbEntry *first = tlb.lookup(1, vpn << pageShift);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->physBase, 0x5000u);
    const TlbEntry *second = tlb.lookup(2, vpn << pageShift);
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(second->physBase, 0x9000u);
    EXPECT_EQ(tlb.lookup(3, vpn << pageShift), nullptr);
}

TEST(Tlb, EvictionOrderWithinSet)
{
    // 2-way, 8-set: for one root, vpns congruent mod sets() collide
    // in one set.  Filling the set and touching the older entry must
    // evict the untouched one.
    Tlb tlb(16, 2);
    ASSERT_EQ(tlb.ways(), 2u);
    const std::uint64_t sets = tlb.sets();
    const VAddr v0 = 5;
    const VAddr v1 = v0 + sets;
    const VAddr v2 = v0 + 2 * sets;

    tlb.insert(TlbEntry{1, v0, 0x1000, true, true});
    tlb.insert(TlbEntry{1, v1, 0x2000, true, true});
    EXPECT_NE(tlb.lookup(1, v0 << pageShift), nullptr); // v0 is MRU
    tlb.insert(TlbEntry{1, v2, 0x3000, true, true});    // evicts v1
    EXPECT_EQ(tlb.stats().value("evictions"), 1u);
    EXPECT_EQ(tlb.lookup(1, v1 << pageShift), nullptr);
    EXPECT_NE(tlb.lookup(1, v0 << pageShift), nullptr);
    EXPECT_NE(tlb.lookup(1, v2 << pageShift), nullptr);
    EXPECT_EQ(tlb.size(), 2u);
}

TEST(Tlb, ReinsertRefreshesInPlace)
{
    Tlb tlb(16, 2);
    tlb.insert(TlbEntry{1, 7, 0x1000, true, true});
    tlb.insert(TlbEntry{1, 7, 0x2000, false, true});
    EXPECT_EQ(tlb.size(), 1u);
    EXPECT_EQ(tlb.stats().value("evictions"), 0u);
    const TlbEntry *hit = tlb.lookup(1, 7 << pageShift);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->physBase, 0x2000u);
    EXPECT_FALSE(hit->writable);
}

TEST(Tlb, FlushPageDropsAllRoots)
{
    // munmap shoots one vpn down across every address space, even
    // though each root caches it in a different set.
    Tlb tlb(64);
    const VAddr vpn = 0x44;
    tlb.insert(TlbEntry{1, vpn, 0x1000, true, true});
    tlb.insert(TlbEntry{2, vpn, 0x2000, true, true});
    tlb.insert(TlbEntry{3, vpn, 0x3000, true, true});
    tlb.insert(TlbEntry{1, vpn + 1, 0x4000, true, true});
    ASSERT_EQ(tlb.size(), 4u);

    tlb.flushPage(vpn << pageShift);
    EXPECT_EQ(tlb.size(), 1u);
    EXPECT_EQ(tlb.lookup(1, vpn << pageShift), nullptr);
    EXPECT_EQ(tlb.lookup(2, vpn << pageShift), nullptr);
    EXPECT_EQ(tlb.lookup(3, vpn << pageShift), nullptr);
    EXPECT_NE(tlb.lookup(1, (vpn + 1) << pageShift), nullptr);
}

TEST(Tlb, StatsParityWithLruModel)
{
    // A single-set TLB is exactly the old fully associative LRU
    // model; replay a scripted access pattern and check the counters
    // match the hand-computed LRU outcome.
    Tlb tlb(2);
    ASSERT_EQ(tlb.sets(), 1u);

    tlb.lookup(1, 1 << pageShift);                  // miss
    tlb.insert(TlbEntry{1, 1, 0x1000, true, true}); // fill
    tlb.lookup(1, 1 << pageShift);                  // hit
    tlb.insert(TlbEntry{1, 2, 0x2000, true, true}); // fill (full now)
    tlb.lookup(1, 2 << pageShift);                  // hit; 1 is LRU
    tlb.insert(TlbEntry{1, 3, 0x3000, true, true}); // evicts 1
    tlb.lookup(1, 1 << pageShift);                  // miss
    tlb.lookup(1, 3 << pageShift);                  // hit
    tlb.flushAll();
    tlb.lookup(1, 3 << pageShift);                  // miss

    EXPECT_EQ(tlb.stats().value("hits"), 3u);
    EXPECT_EQ(tlb.stats().value("misses"), 3u);
    EXPECT_EQ(tlb.stats().value("evictions"), 1u);
    EXPECT_EQ(tlb.stats().value("flushes"), 1u);
    EXPECT_EQ(tlb.size(), 0u);
}

TEST(Mmu, CachesTranslationsAndSeesFlush)
{
    dram::DramConfig config;
    config.capacity = 64 * MiB;
    config.rowBytes = 128 * KiB;
    config.banks = 1;
    dram::DramModule module(config);
    Mmu mmu(module);

    // Build a tiny hierarchy by hand.
    Pfn next = addrToPfn(1 * MiB);
    auto alloc = [&] {
        std::vector<std::uint8_t> zeros(pageSize, 0);
        module.write(pfnToAddr(next), zeros.data(), zeros.size());
        return next++;
    };
    const Pfn root = alloc();
    AddressSpace space(module,
                       [&](unsigned) { return std::optional<Pfn>(alloc()); },
                       [](Pfn) {}, root);
    ASSERT_TRUE(space.map(0x1000000, addrToPfn(32 * MiB),
                          PageFlags{true, true}));

    ASSERT_TRUE(mmu.translate(root, 0x1000000, AccessType::Read,
                              Privilege::User).ok());
    ASSERT_TRUE(mmu.translate(root, 0x1000008, AccessType::Read,
                              Privilege::User).ok());
    EXPECT_EQ(mmu.tlb().stats().value("hits"), 1u);

    // Corrupt the PTE; cached translation hides it until a flush.
    const Addr pte_addr =
        mmu.walker().entryAddress(root, 0x1000000, 1);
    module.writeU64(pte_addr, 0); // wipe the mapping
    EXPECT_TRUE(mmu.translate(root, 0x1000000, AccessType::Read,
                              Privilege::User).ok());
    mmu.tlb().flushAll();
    EXPECT_FALSE(mmu.translate(root, 0x1000000, AccessType::Read,
                               Privilege::User).ok());
}

} // namespace
} // namespace ctamem::paging
