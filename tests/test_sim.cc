/**
 * @file
 * Tests for the sim layer: machine assembly per defense, the
 * attack-vs-defense matrix, the workload runner, and the Table 4
 * performance harness.
 */

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "sim/perf_harness.hh"
#include "sim/workload.hh"

namespace ctamem::sim {
namespace {

using defense::DefenseKind;

TEST(Machine, DefensesMapToPolicies)
{
    MachineConfig config;

    config.defense = DefenseKind::Cta;
    Machine cta(config);
    EXPECT_NE(cta.kernel().ptpZone(), nullptr);
    EXPECT_EQ(cta.observer(), nullptr);

    config.defense = DefenseKind::Para;
    Machine para(config);
    EXPECT_EQ(para.kernel().ptpZone(), nullptr);
    ASSERT_NE(para.observer(), nullptr);
    EXPECT_STREQ(para.observer()->name(), "PARA");

    config.defense = DefenseKind::Anvil;
    Machine anvil(config);
    ASSERT_NE(anvil.anvil(), nullptr);
}

TEST(Machine, CtaRestrictedCarvesReservedZone)
{
    MachineConfig config;
    config.defense = DefenseKind::CtaRestricted;
    Machine machine(config);
    EXPECT_NE(machine.kernel().phys().zone(mm::ZoneId::KernelRsv),
              nullptr);
}

TEST(Machine, AttackMatrixHeadline)
{
    // The headline contrast: spray attack wins on none, loses on CTA.
    MachineConfig config;
    config.defense = DefenseKind::None;
    Machine vulnerable(config);
    EXPECT_EQ(vulnerable.runAttack(AttackKind::ProjectZero).outcome,
              attack::Outcome::Escalated);

    config.defense = DefenseKind::Cta;
    Machine protected_machine(config);
    EXPECT_NE(protected_machine.runAttack(AttackKind::ProjectZero).outcome,
              attack::Outcome::Escalated);
}

TEST(Workload, SuitesHaveTable4Shape)
{
    EXPECT_EQ(spec2006Suite().size(), 12u);  // Table 4 SPEC rows
    EXPECT_EQ(phoronixSuite().size(), 15u);  // Table 4 Phoronix rows
}

TEST(Workload, RunProducesActivity)
{
    MachineConfig config;
    Machine machine(config);
    const WorkloadSpec spec = spec2006Suite().at(4); // gobmk, small
    const WorkloadMetrics metrics =
        runWorkload(machine.kernel(), spec);
    EXPECT_GT(metrics.touches, 0u);
    EXPECT_GT(metrics.pageFaults, 0u);
    EXPECT_GT(metrics.pteAllocs, 0u);
    EXPECT_GT(metrics.score(), 0.0);
    EXPECT_EQ(metrics.oomEvents, 0u);
    // Process cleaned up after itself.
    EXPECT_EQ(machine.kernel().processCount(), 0u);
}

TEST(Workload, DeterministicGivenSeed)
{
    MachineConfig config;
    const WorkloadSpec spec = phoronixSuite().at(8); // cachebench
    Machine a(config);
    Machine b(config);
    const WorkloadMetrics ma = runWorkload(a.kernel(), spec, 5);
    const WorkloadMetrics mb = runWorkload(b.kernel(), spec, 5);
    EXPECT_EQ(ma.touches, mb.touches);
    EXPECT_EQ(ma.pageFaults, mb.pageFaults);
    EXPECT_DOUBLE_EQ(ma.score(), mb.score());
}

TEST(PerfHarness, CtaOverheadIsZeroOnModeledEvents)
{
    // The Table 4 claim: identical event counts => identical scores.
    MachineConfig config;
    config.ptpBytes = 4 * MiB;
    std::vector<WorkloadSpec> quick{spec2006Suite().at(4),
                                    spec2006Suite().at(5),
                                    phoronixSuite().at(12)};
    PtFootprint footprint;
    const std::vector<PerfRow> rows =
        comparePolicies(config, quick, DefenseKind::None,
                        DefenseKind::Cta, &footprint);
    ASSERT_EQ(rows.size(), quick.size());
    for (const PerfRow &row : rows) {
        EXPECT_NEAR(row.deltaPct(), 0.0, 0.5)
            << row.name << ": modeled overhead should be ~0%";
    }
    // Section 6.3: the page-table footprint fits the 4 MiB zone.
    EXPECT_GT(footprint.peakTableBytes, 0u);
    EXPECT_LT(footprint.peakTableBytes, footprint.ptpCapacityBytes);
    EXPECT_EQ(footprint.pteAllocFailures, 0u);
}

TEST(PerfHarness, UndersizedPtpShowsPressure)
{
    // When the zone is too small for the workload's tables, pressure
    // events appear — the §6.3 swapping caveat, observable.
    MachineConfig config;
    config.ptpBytes = 128 * KiB;
    std::vector<WorkloadSpec> heavy{spec2006Suite().at(3)}; // mcf
    PtFootprint footprint;
    const std::vector<PerfRow> rows = comparePolicies(
        config, heavy, DefenseKind::None, DefenseKind::Cta,
        &footprint);
    // Reclaim absorbs the pressure (no hard failures)...
    EXPECT_GT(footprint.ptReclaims, 0u);
    EXPECT_EQ(footprint.pteAllocFailures, 0u);
    // ...at a measurable cost: evicted regions re-fault, so the
    // protected machine's modeled score drops.
    EXPECT_LT(rows[0].deltaPct(), -0.5);
}

} // namespace
} // namespace ctamem::sim
