/**
 * @file
 * Tests for the declarative scenario layer: registry name round
 * trips, config <-> JSON round trips over the Table-1 grid, golden
 * byte-stable output, and manifest-vs-programmatic campaign equality
 * for every checked-in scenario.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "attack/registry.hh"
#include "defense/registry.hh"
#include "paging/arch.hh"
#include "sim/scenario.hh"
#include "sim/scenarios.hh"

namespace ctamem::sim {
namespace {

using defense::DefenseKind;
using json::Json;
using json::JsonError;

std::string
repoPath(const std::string &relative)
{
    return std::string(CTAMEM_SOURCE_DIR) + "/" + relative;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

TEST(Registry, DefenseNamesRoundTrip)
{
    const auto &specs = defense::Registry::instance().all();
    ASSERT_GE(specs.size(), 9u); // 8 built-ins + SoftTRR
    for (const auto &spec : specs) {
        // token -> kind, display -> kind, kind -> token/display.
        EXPECT_EQ(defense::parseDefenseKind(spec->name), spec->kind)
            << spec->name;
        EXPECT_EQ(defense::parseDefenseKind(spec->display),
                  spec->kind)
            << spec->display;
        EXPECT_STREQ(defense::defenseToken(spec->kind),
                     spec->name.c_str());
        EXPECT_STREQ(defense::defenseName(spec->kind),
                     spec->display.c_str());
    }
    EXPECT_EQ(defense::parseDefenseKind("no-such-defense"),
              std::nullopt);
}

TEST(Registry, AttackNamesRoundTrip)
{
    const auto &specs = attack::Registry::instance().all();
    // 5 untimed attacks + uniform/sync_hammer/fuzz_hammer.
    ASSERT_EQ(specs.size(), 8u);
    for (const auto &spec : specs) {
        EXPECT_EQ(attack::parseAttackKind(spec->name), spec->kind)
            << spec->name;
        EXPECT_EQ(attack::parseAttackKind(spec->display), spec->kind)
            << spec->display;
        EXPECT_STREQ(attack::attackToken(spec->kind),
                     spec->name.c_str());
        EXPECT_STREQ(attack::attackName(spec->kind),
                     spec->display.c_str());
    }
    EXPECT_EQ(attack::parseAttackKind("no-such-attack"),
              std::nullopt);
}

TEST(Scenario, MachineConfigRoundTripsOverTable1Grid)
{
    // Every Table-1 config, plus every tunable moved off its default.
    std::vector<MachineConfig> grid = scenarios::table1Configs();
    MachineConfig tweaked;
    tweaked.memBytes = 512 * MiB;
    tweaked.rowBytes = 64 * KiB;
    tweaked.banks = 4;
    tweaked.cellPeriod = 128;
    tweaked.pf = 5e-4;
    tweaked.seed = 99;
    tweaked.defense = DefenseKind::SoftTrr;
    tweaked.ptpBytes = 8 * MiB;
    tweaked.refreshBoostFactor = 8;
    tweaked.paraProbability = 0.01;
    tweaked.anvilThreshold = 123'456;
    tweaked.softTrrThreshold = 250'000;
    tweaked.softTrrTracked = 16;
    grid.push_back(tweaked);

    for (const MachineConfig &config : grid) {
        const MachineConfig back =
            machineConfigFromJson(toJson(config));
        EXPECT_TRUE(back == config)
            << defense::defenseName(config.defense);
        // And through actual text, not just the value tree.
        const MachineConfig reparsed =
            machineConfigFromJson(Json::parse(toJson(config).dump()));
        EXPECT_TRUE(reparsed == config);
    }
}

TEST(Scenario, CtaConfigRoundTrips)
{
    cta::CtaConfig config;
    config.ptpBytes = 16 * MiB;
    config.minIndicatorZeros = 3;
    config.multiLevelZones = true;
    config.screenPageSizeBit = true;
    const cta::CtaConfig back = ctaConfigFromJson(toJson(config));
    EXPECT_EQ(back.ptpBytes, config.ptpBytes);
    EXPECT_EQ(back.minIndicatorZeros, config.minIndicatorZeros);
    EXPECT_EQ(back.multiLevelZones, config.multiLevelZones);
    EXPECT_EQ(back.screenPageSizeBit, config.screenPageSizeBit);
}

TEST(Scenario, CampaignCellRoundTrips)
{
    CampaignCell cell;
    cell.config.defense = DefenseKind::CtaRestricted;
    cell.config.pf = 1e-4;
    cell.attack = AttackKind::Drammer;
    cell.label = "drammer vs restricted CTA";
    const CampaignCell back = campaignCellFromJson(toJson(cell));
    EXPECT_TRUE(back == cell);
}

TEST(Scenario, ConfigOverlaysOntoBase)
{
    MachineConfig base;
    base.defense = DefenseKind::Cta;
    base.pf = 1e-4;
    const Json overlay = Json::parse(R"({"pf": 0.01, "seed": 7})");
    const MachineConfig merged =
        machineConfigFromJson(overlay, base);
    EXPECT_EQ(merged.defense, DefenseKind::Cta); // kept from base
    EXPECT_DOUBLE_EQ(merged.pf, 0.01);           // overridden
    EXPECT_EQ(merged.seed, 7u);                  // overridden
}

TEST(Scenario, UnknownKeysAreHardErrors)
{
    EXPECT_THROW(machineConfigFromJson(
                     Json::parse(R"({"memBytez": 1024})")),
                 JsonError);
    EXPECT_THROW(ctaConfigFromJson(
                     Json::parse(R"({"ptbBytes": 1024})")),
                 JsonError);
    EXPECT_THROW(campaignCellFromJson(
                     Json::parse(R"({"atack": "drammer"})")),
                 JsonError);
    EXPECT_THROW(campaignFromJson(
                     Json::parse(R"({"defences": ["cta"]})")),
                 JsonError);
    // ...while comment-prefixed keys are fine anywhere.
    EXPECT_NO_THROW(machineConfigFromJson(
        Json::parse(R"({"comment": "x", "comment-2": "y"})")));
}

TEST(Scenario, ManifestSchemaViolationsThrow)
{
    // A grid needs attacks...
    EXPECT_THROW(
        campaignFromJson(Json::parse(R"({"defenses": ["cta"]})")),
        JsonError);
    // ...defenses and configs are exclusive...
    EXPECT_THROW(campaignFromJson(Json::parse(
                     R"({"defenses": ["cta"], "configs": [{}],
                         "attacks": ["drammer"]})")),
                 JsonError);
    // ...an empty manifest describes no cells...
    EXPECT_THROW(campaignFromJson(Json::parse("{}")), JsonError);
    // ...and unknown defense/attack names fail loudly.
    EXPECT_THROW(campaignFromJson(Json::parse(
                     R"({"defenses": ["ctaa"],
                         "attacks": ["drammer"]})")),
                 JsonError);
    EXPECT_THROW(campaignFromJson(Json::parse(
                     R"({"defenses": ["cta"],
                         "attacks": ["hammer2000"]})")),
                 JsonError);
}

TEST(Scenario, SchemaVersionGatesManifests)
{
    // The current version parses...
    Json manifest = Json::parse(
        R"({"defenses": ["cta"], "attacks": ["drammer"]})");
    manifest.set("schema_version", kScenarioSchemaVersion);
    EXPECT_EQ(campaignFromJson(manifest).size(), 1u);

    // ...and so does v3: v4 is a strict superset (the arch/granule
    // keys default to the historical x86-64 machine), so the v3
    // manifest corpus keeps its exact meaning.
    manifest.set("schema_version", std::uint64_t{3});
    EXPECT_EQ(campaignFromJson(manifest).size(), 1u);

    // ...any other version is a hard error naming the field, never a
    // best-effort parse of a stale manifest.
    for (const std::uint64_t bad :
         {std::uint64_t{0}, std::uint64_t{2},
          kScenarioSchemaVersion + 1}) {
        manifest.set("schema_version", bad);
        try {
            campaignFromJson(manifest);
            FAIL() << "schema_version " << bad << " was accepted";
        } catch (const JsonError &err) {
            EXPECT_NE(std::string(err.what()).find("schema_version"),
                      std::string::npos);
        }
    }
}

TEST(Scenario, CheckedInManifestsCarryTheSchemaVersion)
{
    for (const auto &entry : std::filesystem::directory_iterator(
             repoPath("scenarios"))) {
        if (entry.path().extension() != ".json")
            continue;
        const Json manifest =
            Json::parseFile(entry.path().string());
        const Json *version = manifest.find("schema_version");
        ASSERT_NE(version, nullptr) << entry.path();
        EXPECT_EQ(version->asU64(), kScenarioSchemaVersion)
            << entry.path();
    }
}

TEST(Scenario, ArchKeysRoundTripAndGateTheirValues)
{
    // Non-default backend: both keys serialize and round-trip.
    MachineConfig config;
    config.arch = paging::Isa::AArch64;
    config.granule = 16 * KiB;
    EXPECT_TRUE(machineConfigFromJson(toJson(config)) == config);

    // At the defaults they serialize to *nothing*: a v3 manifest and
    // its v4 twin produce identical canonical dumps, so svc cache
    // keys for unchanged machines survive the schema bump.
    const std::string dump = toJson(MachineConfig{}).dump();
    EXPECT_EQ(dump.find("arch"), std::string::npos);
    EXPECT_EQ(dump.find("granule"), std::string::npos);

    // Unknown ISA names and unsupported (isa, granule) pairs are
    // hard errors at parse time, not boot-time fatals.
    EXPECT_THROW(
        machineConfigFromJson(Json::parse(R"({"arch": "riscv"})")),
        JsonError);
    EXPECT_THROW(machineConfigFromJson(
                     Json::parse(R"({"granule": 16384})")),
                 JsonError); // x86-64 is 4 KiB only
    EXPECT_THROW(machineConfigFromJson(Json::parse(
                     R"({"arch": "aarch64", "granule": 8192})")),
                 JsonError);
    EXPECT_NO_THROW(machineConfigFromJson(Json::parse(
        R"({"arch": "aarch64", "granule": 65536})")));
}

TEST(Scenario, MachineConfigGoldenBytes)
{
    // The serialized default config, byte for byte.  If this fails
    // because MachineConfig deliberately changed, regenerate the
    // golden file from toJson(MachineConfig{}).dump().
    const std::string golden =
        readFile(repoPath("tests/golden/machine_config.json"));
    EXPECT_EQ(toJson(MachineConfig{}).dump() + "\n", golden);
}

/** A fixed 2-cell report: no attacks run, every field pinned. */
CampaignReport
twoCellReport()
{
    CampaignReport report;
    CellResult first;
    first.cell.config.defense = DefenseKind::None;
    first.cell.attack = AttackKind::ProjectZero;
    first.cell.label = "spray vs vanilla";
    first.result.outcome = attack::Outcome::Escalated;
    first.result.attackTime = 123456789;
    first.result.hammerPasses = 3;
    first.result.flipsInduced = 17;
    first.result.ptesCorrupted = 2;
    first.result.selfReferences = 1;
    first.result.detail = "golden fixture, not a real run";

    CellResult second;
    second.cell.config.defense = DefenseKind::Cta;
    second.cell.config.pf = 1e-4;
    second.cell.attack = AttackKind::Algorithm1;
    second.cell.label = "algorithm1 vs cta";
    second.result.outcome = attack::Outcome::Blocked;
    second.result.detail = "zone holds";
    second.anvilTriggered = false;

    report.cells.push_back(std::move(first));
    report.cells.push_back(std::move(second));
    report.wallSeconds = 0.0; // pinned: golden bytes can't drift
    return report;
}

TEST(Scenario, CampaignReportGoldenBytes)
{
    const std::string golden =
        readFile(repoPath("tests/golden/campaign_report.json"));
    EXPECT_EQ(twoCellReport().toJson().dump() + "\n", golden);
}

TEST(Scenario, ReportJsonRoundTripsItsCells)
{
    const Json j = twoCellReport().toJson();
    ASSERT_EQ(j.at("cells").size(), 2u);
    // The embedded cell configs parse back to the originals.
    const CampaignCell back = campaignCellFromJson(
        j.at("cells").items()[1].at("cell"));
    EXPECT_TRUE(back == twoCellReport().cells[1].cell);
}

TEST(Scenario, ManifestsMatchTheirProgrammaticTwins)
{
    const struct
    {
        const char *path;
        Campaign campaign;
    } pairs[] = {
        {"scenarios/paper-default.json", scenarios::paperDefault()},
        {"scenarios/hardened.json", scenarios::hardened()},
        {"scenarios/ablation.json", scenarios::pfAblation()},
    };
    for (const auto &[path, programmatic] : pairs) {
        const Campaign loaded =
            Campaign::fromManifest(repoPath(path));
        // Cell-for-cell identical: same configs, same attacks, same
        // labels, same order — so the two runs produce the same
        // report table.
        EXPECT_TRUE(loaded.cells() == programmatic.cells()) << path;
    }
}

TEST(Scenario, AnnotatedExampleManifestLoads)
{
    const Campaign campaign = Campaign::fromManifest(
        repoPath("scenarios/example-annotated.json"));
    // 2 defenses x 2 attacks + 1 explicit cell.
    ASSERT_EQ(campaign.size(), 5u);
    const CampaignCell &last = campaign.cells().back();
    EXPECT_EQ(last.label, "drammer vs a hardened mobile stack");
    EXPECT_EQ(last.config.defense, DefenseKind::SoftTrr);
    EXPECT_EQ(last.config.softTrrThreshold, 250'000u);
    // base fields flowed into the explicit cell's config.
    EXPECT_EQ(last.config.seed, 1234u);
}

TEST(Scenario, ManifestCampaignRunsLikeProgrammatic)
{
    // The acceptance check end to end, on a small deterministic
    // slice: running the manifest-loaded campaign produces the same
    // outcomes as the programmatic preset.
    Campaign manifest = Campaign::fromManifest(
        repoPath("scenarios/ablation.json"));
    Campaign programmatic = scenarios::pfAblation();
    manifest.truncate(2);
    programmatic.truncate(2);
    const CampaignReport a = manifest.run();
    const CampaignReport b = programmatic.run();
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        EXPECT_TRUE(a.cells[i].cell == b.cells[i].cell);
        EXPECT_EQ(a.cells[i].result.outcome,
                  b.cells[i].result.outcome);
        EXPECT_EQ(a.cells[i].result.flipsInduced,
                  b.cells[i].result.flipsInduced);
    }
}

TEST(Scenario, SoftTrrEntersSweepsPurelyByName)
{
    // SoftTRR was added via registration only (no machine.cc /
    // kernel.cc edits): naming it in a manifest is enough to put it
    // in a Table-1-style sweep.
    const Campaign campaign =
        Campaign::fromManifest(repoPath("scenarios/hardened.json"));
    bool found = false;
    for (const CampaignCell &cell : campaign.cells())
        found |= cell.config.defense == DefenseKind::SoftTrr;
    EXPECT_TRUE(found);

    MachineConfig config;
    config.defense = DefenseKind::SoftTrr;
    Machine machine(config);
    ASSERT_NE(machine.observer(), nullptr);
    EXPECT_STREQ(machine.observer()->name(), "SoftTRR");
}

} // namespace
} // namespace ctamem::sim
