/**
 * @file
 * Unit and property tests for the RowHammer engine: flip directions
 * per cell type, intensity thresholds, victim selection, observer
 * suppression, templating stability.
 */

#include <gtest/gtest.h>

#include "dram/hammer.hh"
#include "dram/module.hh"

namespace ctamem::dram {
namespace {

DramConfig
hammerConfig(double pf = 5e-3)
{
    DramConfig config;
    config.capacity = 64 * MiB;
    config.rowBytes = 128 * KiB;
    config.banks = 1;
    // Period 4 gives both cell types close together.
    config.cellMap = CellTypeMap::alternating(4);
    config.errors.pf = pf; // boosted so every row has many flips
    config.seed = 3;
    return config;
}

/** Fill a whole row with one byte value. */
void
fillRow(DramModule &module, std::uint64_t row, std::uint8_t value)
{
    std::vector<std::uint8_t> buffer(module.geometry().rowBytes(),
                                     value);
    module.write(row * module.geometry().rowBytes(), buffer.data(),
                 buffer.size());
}

TEST(Hammer, TrueCellVictimsFlipDownOnly)
{
    DramModule module(hammerConfig());
    RowHammerEngine engine(module);
    engine.setRecordEvents(true); // this test inspects the flip list
    // The disturbance reaches the victim (row 1) and the outer
    // neighbours of the aggressors (row 3); fill them all with ones.
    for (std::uint64_t row = 0; row <= 3; ++row)
        fillRow(module, row, 0xff);

    // Rows 0..3 are true cells; double-sided hammer on victim row 1.
    const HammerResult result = engine.hammerDoubleSided(0, 1);
    EXPECT_GT(result.flips10, 0u);
    EXPECT_EQ(result.flips01, 0u); // all-ones data: only 1->0 possible
    for (const FlipEvent &event : result.events)
        EXPECT_EQ(event.dir, FlipDirection::OneToZero);
}

TEST(Hammer, TrueCellAllZeroDataRarelyFlips)
{
    DramModule module(hammerConfig());
    RowHammerEngine engine(module);
    fillRow(module, 1, 0x00);

    const HammerResult result = engine.hammerDoubleSided(0, 1);
    // 0->1 flips exist but at 0.2% of the vulnerable population.
    EXPECT_EQ(result.flips10, 0u);
    const std::size_t vulnerable =
        engine.vulnerableBits(0, 1).size();
    EXPECT_LT(result.flips01, vulnerable / 50);
}

TEST(Hammer, AntiCellVictimsFlipUp)
{
    DramModule module(hammerConfig());
    RowHammerEngine engine(module);
    // Rows 4..7 are anti-cells.
    fillRow(module, 5, 0x00);
    const HammerResult result = engine.hammerDoubleSided(0, 5);
    EXPECT_GT(result.flips01, 0u);
    EXPECT_EQ(result.flips10, 0u);
}

TEST(Hammer, DoubleSidedBeatsSingleSided)
{
    DramModule module(hammerConfig());
    RowHammerEngine engine(module);
    fillRow(module, 1, 0xff);
    const HammerResult double_sided = engine.hammerDoubleSided(0, 1);

    DramModule module2(hammerConfig());
    RowHammerEngine engine2(module2);
    fillRow(module2, 1, 0xff);
    fillRow(module2, 0, 0xff);
    // Single-sided on row 0 disturbs row 1 at lower intensity.
    const HammerResult single = engine2.hammerRow(0, 0);
    EXPECT_GT(double_sided.flips10, single.flips10);
}

TEST(Hammer, RepeatHammerIsIdempotentOnSameData)
{
    DramModule module(hammerConfig());
    RowHammerEngine engine(module);
    fillRow(module, 1, 0xff);
    const HammerResult first = engine.hammerDoubleSided(0, 1);
    const HammerResult second = engine.hammerDoubleSided(0, 1);
    EXPECT_GT(first.flips10, 0u);
    EXPECT_EQ(second.flips10, 0u); // already flipped
}

TEST(Hammer, TemplatingIsReproducible)
{
    // Same module seed => same flip locations (memory templating).
    auto run = [] {
        DramModule module(hammerConfig());
        RowHammerEngine engine(module);
        engine.setRecordEvents(true);
        fillRow(module, 1, 0xff);
        return engine.hammerDoubleSided(0, 1).events;
    };
    const auto a = run();
    const auto b = run();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].addr, b[i].addr);
        EXPECT_EQ(a[i].bit, b[i].bit);
    }
}

TEST(Hammer, DifferentSeedDifferentTemplate)
{
    DramConfig config_a = hammerConfig();
    DramConfig config_b = hammerConfig();
    config_b.seed = 999;
    DramModule module_a(config_a);
    DramModule module_b(config_b);
    RowHammerEngine engine_a(module_a);
    RowHammerEngine engine_b(module_b);
    engine_a.setRecordEvents(true);
    engine_b.setRecordEvents(true);
    fillRow(module_a, 1, 0xff);
    fillRow(module_b, 1, 0xff);
    const auto a = engine_a.hammerDoubleSided(0, 1).events;
    const auto b = engine_b.hammerDoubleSided(0, 1).events;
    bool identical = a.size() == b.size();
    for (std::size_t i = 0; identical && i < a.size(); ++i)
        identical = a[i].addr == b[i].addr && a[i].bit == b[i].bit;
    EXPECT_FALSE(identical);
}

/** Observer that suppresses every pass and records calls. */
class SuppressAll : public DisturbanceObserver
{
  public:
    bool
    onHammer(const DisturbanceEvent &) override
    {
        ++calls;
        return true;
    }

    int calls = 0;
};

TEST(Hammer, ObserverCanSuppressFlips)
{
    DramModule module(hammerConfig());
    SuppressAll observer;
    RowHammerEngine engine(module, &observer);
    fillRow(module, 1, 0xff);
    const HammerResult result = engine.hammerDoubleSided(0, 1);
    EXPECT_TRUE(result.suppressed);
    EXPECT_EQ(result.total(), 0u);
    EXPECT_GT(observer.calls, 0);
    EXPECT_EQ(engine.stats().value("suppressedPasses"), 1u);
}

TEST(Hammer, VulnerableBitScanMatchesFaultModel)
{
    DramModule module(hammerConfig());
    RowHammerEngine engine(module);
    const auto &bits = engine.vulnerableBits(0, 1);
    const FaultModel &faults = module.faults();
    const Addr base = 1 * 128 * KiB;
    for (const VulnerableBit &cell : bits) {
        EXPECT_TRUE(faults.vulnerable(base + cell.column, cell.bit));
    }
    // Expected count: rowBytes * 8 * pf.
    const double expected = 128.0 * KiB * 8 * 5e-3;
    EXPECT_NEAR(static_cast<double>(bits.size()), expected,
                expected * 0.1);
}

TEST(Hammer, EdgeRowFallsBackToSingleSided)
{
    DramModule module(hammerConfig());
    RowHammerEngine engine(module);
    fillRow(module, 0, 0xff);
    fillRow(module, 1, 0xff);
    // Victim at row 0 has no row above it: must not crash.
    const HammerResult result = engine.hammerDoubleSided(0, 0);
    (void)result;
    SUCCEED();
}

TEST(Hammer, RemappedRowMovesVictims)
{
    // After remapping, hammering the logical row disturbs the
    // neighbours of its *device* row — the CATT-bypass mechanism.
    DramConfig config = hammerConfig();
    config.cellMap = CellTypeMap::uniform(CellType::True);
    DramModule module(config);
    RowHammerEngine engine(module);
    engine.setRecordEvents(true);

    // Remap logical row 100 to device row 200.
    module.remapRow(0, 100, 200);
    fillRow(module, 199, 0xff); // logical 199 == device 199
    fillRow(module, 201, 0xff);
    fillRow(module, 99, 0xff);
    fillRow(module, 101, 0xff);

    const HammerResult result = engine.hammerRow(0, 100);
    // Victims are device rows 199/201, not 99/101.
    for (const FlipEvent &event : result.events) {
        const std::uint64_t row =
            event.addr / module.geometry().rowBytes();
        EXPECT_TRUE(row == 199 || row == 201)
            << "unexpected victim row " << row;
    }
}

TEST(Hammer, ProfileCacheCountsHitsAndMisses)
{
    // Fresh seed so these keys cannot collide with profiles other
    // tests in this binary already cached.
    DramConfig config = hammerConfig();
    config.seed = 0x90f17eULL;
    DramModule module(config);

    const ProfileCacheStats before = profileCacheStats();
    RowHammerEngine first(module);
    for (std::uint64_t row = 0; row < 16; ++row)
        first.rowProfile(0, row);
    ProfileCacheStats after = profileCacheStats();
    EXPECT_EQ(after.misses - before.misses, 16u);
    EXPECT_EQ(after.hits, before.hits);

    // A second engine over the same module shares every profile.
    RowHammerEngine second(module);
    for (std::uint64_t row = 0; row < 16; ++row)
        second.rowProfile(0, row);
    after = profileCacheStats();
    EXPECT_EQ(after.hits - before.hits, 16u);
    EXPECT_EQ(after.misses - before.misses, 16u);
}

TEST(Hammer, ProfileCacheShrinkEvictsToCapacity)
{
    DramConfig config = hammerConfig();
    config.seed = 0xca9ac17eULL;
    DramModule module(config);
    RowHammerEngine engine(module);
    for (std::uint64_t row = 0; row < 16; ++row)
        engine.rowProfile(0, row);

    const ProfileCacheStats before = profileCacheStats();
    ASSERT_GE(before.entries, 16u);

    profileCacheSetCapacity(8);
    const ProfileCacheStats shrunk = profileCacheStats();
    EXPECT_EQ(shrunk.capacity, 8u);
    EXPECT_LE(shrunk.entries, 8u);
    EXPECT_GE(shrunk.evictions - before.evictions,
              before.entries - 8u);

    // Eviction never invalidates a held profile: the engine's
    // shared_ptr keeps its rows alive, so re-reads still work.
    EXPECT_EQ(engine.rowProfile(0, 3).base,
              module.rowBase(0, 3));

    profileCacheSetCapacity(1024); // restore the default bound
    EXPECT_EQ(profileCacheStats().capacity, 1024u);
}

} // namespace
} // namespace ctamem::dram
