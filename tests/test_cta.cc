/**
 * @file
 * Tests for the CTA core: PTP indicator arithmetic, ZONE_PTP
 * construction (true-cell collection, capacity loss, low water mark),
 * the kernel-reserved indicator restriction, multi-level zones,
 * PS-bit screening, and the theorem helpers.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "cta/indicator.hh"
#include "paging/pte.hh"
#include "cta/plan.hh"
#include "cta/ptp_zone.hh"
#include "cta/theorem.hh"
#include "dram/module.hh"

namespace ctamem::cta {
namespace {

using dram::CellType;
using dram::CellTypeMap;
using dram::DramConfig;
using dram::DramModule;

DramConfig
baseConfig(CellTypeMap map = CellTypeMap::alternating(64))
{
    DramConfig config;
    config.capacity = 256 * MiB;
    config.rowBytes = 128 * KiB;
    config.banks = 1;
    config.cellMap = map;
    config.seed = 17;
    return config;
}

CtaConfig
ctaConfig(std::uint64_t ptp = 2 * MiB)
{
    CtaConfig config;
    config.ptpBytes = ptp;
    return config;
}

TEST(Indicator, PaperConfiguration)
{
    // 8 GiB with 32 MiB ZONE_PTP: n = 8 indicator bits.
    PtpIndicator ind(8 * GiB, 32 * MiB);
    EXPECT_EQ(ind.bits(), 8u);
    EXPECT_EQ(ind.regionBytes(), 32 * MiB);
    EXPECT_EQ(ind.regionBase(), 8 * GiB - 32 * MiB);
    EXPECT_TRUE(ind.allOnes(8 * GiB - 1));
    EXPECT_TRUE(ind.allOnes(8 * GiB - 32 * MiB));
    EXPECT_FALSE(ind.allOnes(8 * GiB - 32 * MiB - 1));
    EXPECT_EQ(ind.zeros(0), 8u);
    EXPECT_EQ(ind.zeros(8 * GiB - 1), 0u);
    // One zero: the region just below the top one.
    EXPECT_EQ(ind.zeros(8 * GiB - 64 * MiB), 1u);
}

TEST(Indicator, RejectsBadSizes)
{
    EXPECT_THROW(PtpIndicator(8 * GiB, 8 * GiB), FatalError);
    EXPECT_THROW(PtpIndicator(8 * GiB, 0), FatalError);
    EXPECT_THROW(PtpIndicator(8 * GiB + 1, 32 * MiB), FatalError);
}

TEST(PtpZone, CollectsOnlyTrueCells)
{
    DramModule module(baseConfig());
    PtpZone zone(module, ctaConfig());
    EXPECT_EQ(zone.trueBytes(), 2 * MiB);
    for (const mm::FrameSpan &span : zone.subZones()) {
        for (Pfn pfn = span.basePfn; pfn < span.endPfn(); ++pfn) {
            EXPECT_EQ(module.cellTypeAt(pfnToAddr(pfn)),
                      CellType::True);
        }
    }
}

TEST(PtpZone, SkipsAntiTopStripe)
{
    // Period 64 rows = 8 MiB stripes; the top stripe is anti-cells,
    // so the zone skips 8 MiB and the LWM lands at 246 MiB.
    DramModule module(baseConfig());
    PtpZone zone(module, ctaConfig());
    EXPECT_EQ(zone.skippedAntiBytes(), 8 * MiB);
    EXPECT_EQ(zone.lowWaterMark(), 246 * MiB);
}

TEST(PtpZone, NoLossWhenTrueCellsOnTop)
{
    DramModule module(
        baseConfig(CellTypeMap::alternating(64, /*true_first=*/false)));
    // Anti-first with 32 stripes: top stripe (index 31, odd) is true.
    PtpZone zone(module, ctaConfig());
    EXPECT_EQ(zone.skippedAntiBytes(), 0u);
    EXPECT_EQ(zone.lowWaterMark(), 254 * MiB);
}

TEST(PtpZone, MostlyTrueModuleHasTinyLoss)
{
    // 63:1 true:anti -> at most one anti row skipped per 64.
    DramModule module(baseConfig(CellTypeMap::mostlyTrue(63)));
    PtpZone zone(module, ctaConfig());
    EXPECT_LE(zone.skippedAntiBytes(), 128 * KiB);
}

TEST(PtpZone, AllAntiModuleFails)
{
    DramModule module(
        baseConfig(CellTypeMap::uniform(CellType::Anti)));
    EXPECT_THROW(PtpZone(module, ctaConfig()), FatalError);
}

TEST(PtpZone, AllocateZeroesAndStaysInZone)
{
    DramModule module(baseConfig());
    PtpZone zone(module, ctaConfig());
    module.writeU64(pfnToAddr(addrToPfn(247 * MiB)), 0xffULL);
    for (int i = 0; i < 32; ++i) {
        auto pfn = zone.allocate(1);
        ASSERT_TRUE(pfn);
        EXPECT_TRUE(zone.contains(*pfn));
        EXPECT_GE(pfnToAddr(*pfn), zone.lowWaterMark());
        EXPECT_EQ(module.readU64(pfnToAddr(*pfn)), 0u);
    }
}

TEST(PtpZone, ExhaustionReturnsNullopt)
{
    DramModule module(baseConfig());
    PtpZone zone(module, ctaConfig());
    const std::uint64_t total = zone.totalFrames();
    for (std::uint64_t i = 0; i < total; ++i)
        ASSERT_TRUE(zone.allocate(1).has_value());
    EXPECT_FALSE(zone.allocate(1).has_value());
}

TEST(PtpZone, FreeRecyclesFrames)
{
    DramModule module(baseConfig());
    PtpZone zone(module, ctaConfig());
    auto pfn = zone.allocate(1);
    ASSERT_TRUE(pfn);
    const std::uint64_t free_before = zone.freeFrames();
    zone.free(*pfn);
    EXPECT_EQ(zone.freeFrames(), free_before + 1);
}

TEST(PtpZone, MultiLevelOrdering)
{
    DramModule module(baseConfig());
    CtaConfig config = ctaConfig();
    config.multiLevelZones = true;
    PtpZone zone(module, config);

    // Higher-level tables must land at higher physical addresses.
    auto l4 = zone.allocate(4);
    auto l3 = zone.allocate(3);
    auto l2 = zone.allocate(2);
    auto l1 = zone.allocate(1);
    ASSERT_TRUE(l4 && l3 && l2 && l1);
    EXPECT_GT(*l4, *l3);
    EXPECT_GT(*l3, *l2);
    EXPECT_GT(*l2, *l1);
}

TEST(PtpZone, PsBitScreeningDropsVulnerableFrames)
{
    DramConfig dconfig = baseConfig();
    dconfig.errors.pf = 5e-4; // boost so screening has victims
    DramModule module(dconfig);
    CtaConfig config = ctaConfig();
    config.multiLevelZones = true;
    config.screenPageSizeBit = true;
    PtpZone zone(module, config);
    EXPECT_GT(zone.screenedFrames(), 0u);

    // Surviving level>=2 frames must have no 1->0-vulnerable PS bit.
    for (unsigned level = 2; level <= 4; ++level) {
        auto pfn = zone.allocate(level);
        ASSERT_TRUE(pfn);
        for (std::uint64_t slot = 0; slot < ctamem::paging::ptesPerPage;
             ++slot) {
            const Addr addr = pfnToAddr(*pfn) + slot * 8;
            const bool bad =
                module.faults().vulnerable(addr, 7) &&
                module.faults().flipDirection(addr, 7,
                                              CellType::True) ==
                    dram::FlipDirection::OneToZero;
            EXPECT_FALSE(bad);
        }
    }
}

TEST(Plan, StandardZonesStopAtLwm)
{
    DramModule module(baseConfig());
    CtaPlan plan = buildCtaPlan(module, ctaConfig());
    const Addr lwm = plan.ptp->lowWaterMark();
    for (const mm::ZoneSpec &spec : plan.physSpecs) {
        for (const mm::FrameSpan &span : spec.spans)
            EXPECT_LE(pfnToAddr(span.endPfn()), lwm);
    }
}

TEST(Plan, RestrictionCarvesKernelRsv)
{
    DramModule module(baseConfig());
    CtaConfig config = ctaConfig();
    config.minIndicatorZeros = 2;
    CtaPlan plan = buildCtaPlan(module, config);

    const auto rsv_it =
        std::find_if(plan.physSpecs.begin(), plan.physSpecs.end(),
                     [](const mm::ZoneSpec &spec) {
                         return spec.id == mm::ZoneId::KernelRsv;
                     });
    ASSERT_NE(rsv_it, plan.physSpecs.end());

    // Every reserved frame has < 2 zeros; every remaining normal /
    // dma32 frame has >= 2 zeros or sits below the indicator field.
    const PtpIndicator &ind = plan.ptp->indicator();
    for (const mm::FrameSpan &span : rsv_it->spans) {
        for (Pfn pfn = span.basePfn; pfn < span.endPfn();
             pfn += span.frames / 2 + 1) {
            EXPECT_LT(ind.zeros(pfnToAddr(pfn)), 2u);
        }
    }
    for (const mm::ZoneSpec &spec : plan.physSpecs) {
        if (spec.id == mm::ZoneId::KernelRsv)
            continue;
        for (const mm::FrameSpan &span : spec.spans) {
            EXPECT_GE(ind.zeros(pfnToAddr(span.basePfn)), 2u);
            EXPECT_GE(ind.zeros(pfnToAddr(span.endPfn() - 1)), 2u);
        }
    }
}

TEST(Plan, SubtractSpans)
{
    using mm::FrameSpan;
    const std::vector<FrameSpan> from{FrameSpan{0, 100}};
    const std::vector<FrameSpan> holes{FrameSpan{10, 10},
                                       FrameSpan{50, 10}};
    const auto result = subtractSpans(from, holes);
    ASSERT_EQ(result.size(), 3u);
    EXPECT_EQ(result[0], (FrameSpan{0, 10}));
    EXPECT_EQ(result[1], (FrameSpan{20, 30}));
    EXPECT_EQ(result[2], (FrameSpan{60, 40}));
}

TEST(Theorem, FlipReachability)
{
    EXPECT_TRUE(reachableByDownFlips(0b1010, 0b1000));
    EXPECT_TRUE(reachableByDownFlips(0b1010, 0b0000));
    EXPECT_FALSE(reachableByDownFlips(0b1010, 0b1011));
    EXPECT_TRUE(reachableByUpFlips(0b1010, 0b1110));
    EXPECT_FALSE(reachableByUpFlips(0b1010, 0b0010));
}

TEST(Theorem, MonotonicityExhaustiveSmall)
{
    // Property check over every 8-bit (before, after) pair: any
    // down-flip-reachable value is numerically smaller or equal.
    for (unsigned before = 0; before < 256; ++before) {
        for (unsigned after = 0; after < 256; ++after) {
            EXPECT_TRUE(monotonicityHolds(before, after));
            if (reachableByDownFlips(before, after)) {
                EXPECT_LE(after, before);
            }
        }
    }
}

} // namespace
} // namespace ctamem::cta
