/**
 * @file
 * Tests for the paging::Arch descriptor layer: the x86-64 descriptor
 * is pinned bit-identical to the historical pte.hh constants, the
 * AArch64 descriptors encode ARMv8-A stage-1 formats, and one
 * map/walk/unmap workload behaves identically across every backend
 * (the cross-backend property the refactor must preserve).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "dram/module.hh"
#include "paging/address_space.hh"
#include "paging/arch.hh"
#include "paging/pte.hh"
#include "paging/tlb.hh"
#include "paging/walker.hh"

namespace ctamem::paging {
namespace {

TEST(Arch, X86DescriptorPinsTheHistoricalLayout)
{
    // Every field equals its pte.hh constant — the refactor's
    // bit-identity anchor.
    EXPECT_EQ(kX86_64.levels, pagingLevels);
    EXPECT_EQ(kX86_64.granuleShift, pageShift);
    EXPECT_EQ(kX86_64.presentBit, Pte::presentBit);
    EXPECT_EQ(kX86_64.writableBit, Pte::writableBit);
    EXPECT_FALSE(kX86_64.writableLowActive);
    EXPECT_EQ(kX86_64.userBit, Pte::userBit);
    EXPECT_EQ(kX86_64.accessedBit, Pte::accessedBit);
    EXPECT_EQ(kX86_64.dirtyBit, Pte::dirtyBit);
    EXPECT_EQ(kX86_64.blockBit, Pte::pageSizeBit);
    EXPECT_FALSE(kX86_64.blockLowActive);
    EXPECT_EQ(kX86_64.nxBit, Pte::nxBit);
    EXPECT_EQ(kX86_64.pointerLo, Pte::pfnLo);
    EXPECT_EQ(kX86_64.pointerHi, Pte::pfnHi);
    EXPECT_EQ(kX86_64.entriesPerTable(), ptesPerPage);
    EXPECT_EQ(kX86_64.tableOrder(), 0u);
    EXPECT_EQ(kX86_64.granuleFrames(), 1u);
    EXPECT_EQ(kX86_64.tag(), 0u);

    // Encodings reduce to the old Pte::make bytes.
    const Pfn pfn = 0x12345;
    const PageFlags flags{true, true, true};
    EXPECT_EQ(kX86_64.makeLeaf(pfn, flags, 1),
              Pte::make(pfn, flags).raw());
    EXPECT_EQ(kX86_64.makeLeaf(pfn, flags, 2),
              Pte::make(pfn, flags, /*page_size=*/true).raw());
    EXPECT_EQ(kX86_64.makeTable(pfn),
              Pte::make(pfn, PageFlags{true, true}).raw());

    // Index extraction and coverage match the free functions.
    const VAddr vaddr = 0x7f0000123456ULL;
    for (unsigned level = 1; level <= 4; ++level) {
        EXPECT_EQ(kX86_64.tableIndex(vaddr, level),
                  tableIndex(vaddr, level));
        EXPECT_EQ(kX86_64.levelCoverage(level), levelCoverage(level));
    }
}

TEST(Arch, AArch64DescriptorsEncodeArmFormats)
{
    const Pfn pfn = addrToPfn(64 * MiB);

    // Table descriptor: bits[1:0] = 0b11, no permission bits.
    const std::uint64_t table = kAArch64_4K.makeTable(pfn);
    EXPECT_EQ(table & 0x3, 0x3u);
    EXPECT_EQ(kAArch64_4K.pfn(table), pfn);

    // Level-1 page descriptor: type bit set, AF set, AP[2] clear for
    // writable, AP[1] set for user, UXN for no-execute.
    const std::uint64_t page =
        kAArch64_4K.makeLeaf(pfn, PageFlags{true, true, true}, 1);
    EXPECT_EQ(page & 0x3, 0x3u);
    EXPECT_TRUE(page & (1ULL << 10));  // AF
    EXPECT_FALSE(page & (1ULL << 7));  // AP[2] clear = writable
    EXPECT_TRUE(page & (1ULL << 6));   // AP[1] = EL0
    EXPECT_TRUE(page & (1ULL << 54));  // UXN
    EXPECT_TRUE(kAArch64_4K.writable(page));
    EXPECT_TRUE(kAArch64_4K.user(page));
    EXPECT_TRUE(kAArch64_4K.leafAt(page, 1));

    // Read-only leaf: AP[2] *set* (active-low writable).
    const std::uint64_t ro =
        kAArch64_4K.makeLeaf(pfn, PageFlags{false, true}, 1);
    EXPECT_TRUE(ro & (1ULL << 7));
    EXPECT_FALSE(kAArch64_4K.writable(ro));

    // Block descriptor at level 2: type bit *clear*.
    const std::uint64_t block =
        kAArch64_4K.makeLeaf(pfn, PageFlags{true, true}, 2);
    EXPECT_EQ(block & 0x3, 0x1u);
    EXPECT_TRUE(kAArch64_4K.blockMarked(block));
    EXPECT_TRUE(kAArch64_4K.blockAt(block, 2));
    EXPECT_FALSE(kAArch64_4K.blockAt(block, 1));

    // 16K/64K granules: the pointer field is granule-aligned, and
    // pfn() always answers in global 4 KiB frames.
    for (const Arch *arch : {&kAArch64_16K, &kAArch64_64K}) {
        const Pfn frame = addrToPfn(128 * MiB);
        const std::uint64_t leaf =
            arch->makeLeaf(frame, PageFlags{true, true}, 1);
        EXPECT_EQ(arch->pfn(leaf), frame) << arch->name;
        EXPECT_EQ(arch->granuleFrames(),
                  arch->granuleBytes() / pageSize)
            << arch->name;
    }

    // Blocks above maxLeafLevel never decode as block leaves.
    EXPECT_FALSE(kAArch64_16K.blockAt(
        kAArch64_16K.makeLeaf(pfn, PageFlags{true, true}, 2), 3));
}

TEST(Arch, ResolveAndIsaTokensRoundTrip)
{
    EXPECT_EQ(&resolveArch(Isa::X86_64, 4 * KiB), &kX86_64);
    EXPECT_EQ(&resolveArch(Isa::AArch64, 4 * KiB), &kAArch64_4K);
    EXPECT_EQ(&resolveArch(Isa::AArch64, 16 * KiB), &kAArch64_16K);
    EXPECT_EQ(&resolveArch(Isa::AArch64, 64 * KiB), &kAArch64_64K);
    EXPECT_THROW(resolveArch(Isa::X86_64, 16 * KiB),
                 ctamem::FatalError);
    EXPECT_THROW(resolveArch(Isa::AArch64, 8 * KiB),
                 ctamem::FatalError);

    for (const Arch *arch : kAllArches) {
        Isa isa = Isa::X86_64;
        EXPECT_TRUE(parseIsa(isaName(arch->isa), isa)) << arch->name;
        EXPECT_EQ(isa, arch->isa) << arch->name;
    }
    Isa isa = Isa::X86_64;
    EXPECT_FALSE(parseIsa("riscv", isa));
}

/**
 * One backend under test: DRAM + a bump allocator that hands out
 * naturally aligned granules (the invariant the buddy allocator
 * provides in the real kernel).
 */
struct Backend
{
    explicit Backend(const Arch &arch) : arch(&arch)
    {
        dram::DramConfig config;
        config.capacity = 256 * MiB;
        config.rowBytes = 128 * KiB;
        config.banks = 1;
        module = std::make_unique<dram::DramModule>(config);
        next = addrToPfn(1 * MiB);
        root = allocTable();
        space = std::make_unique<AddressSpace>(
            *module,
            [this](unsigned) {
                return std::optional<Pfn>(allocTable());
            },
            [](Pfn) {}, root, arch);
        walker = std::make_unique<PageWalker>(*module, arch);
    }

    Pfn
    allocTable()
    {
        const Pfn frames = arch->granuleFrames();
        next = (next + frames - 1) & ~(frames - 1);
        const Pfn pfn = next;
        next += frames;
        std::vector<std::uint8_t> zeros(arch->granuleBytes(), 0);
        module->write(pfnToAddr(pfn), zeros.data(), zeros.size());
        return pfn;
    }

    const Arch *arch;
    std::unique_ptr<dram::DramModule> module;
    Pfn next;
    Pfn root;
    std::unique_ptr<AddressSpace> space;
    std::unique_ptr<PageWalker> walker;
};

TEST(Arch, CrossBackendWalkProperty)
{
    // The same random workload on every backend: map 64 KiB-aligned
    // pages (aligned for the coarsest granule, so the mapped bytes
    // agree), walk with every access/privilege mix, unmap, re-walk.
    Rng rng(20260808);
    struct Page
    {
        VAddr vaddr;
        Pfn frame;
        PageFlags flags;
    };
    std::vector<Page> pages;
    for (int i = 0; i < 48; ++i) {
        Page page;
        // A distinct 256 MiB region per page (no overlap, whatever
        // the granule) with a random aligned offset inside it; well
        // under the smallest backend VA span (42-bit, 64K granule).
        page.vaddr = (std::uint64_t(i + 1) << 28) |
                     ((rng.next() & ((1ULL << 28) - 1)) &
                      ~std::uint64_t(64 * KiB - 1));
        page.frame =
            addrToPfn((32 * MiB + i * 64 * KiB) & ~(64 * KiB - 1));
        page.flags.writable = (i % 3) != 0;
        page.flags.user = (i % 2) != 0;
        pages.push_back(page);
    }

    std::vector<std::unique_ptr<Backend>> backends;
    for (const Arch *arch : kAllArches)
        backends.push_back(std::make_unique<Backend>(*arch));

    for (auto &backend : backends) {
        for (const Page &page : pages)
            ASSERT_TRUE(backend->space->map(page.vaddr, page.frame,
                                            page.flags))
                << backend->arch->name;
    }

    for (const Page &page : pages) {
        for (const unsigned offset : {0u, 0x123u, 0xfffu}) {
            // Reference semantics from the historical x86-64 walk.
            const WalkResult want = backends[0]->walker->walk(
                backends[0]->root, page.vaddr + offset,
                AccessType::Read, Privilege::Supervisor);
            ASSERT_TRUE(want.ok());
            for (auto &backend : backends) {
                const WalkResult got = backend->walker->walk(
                    backend->root, page.vaddr + offset,
                    AccessType::Read, Privilege::Supervisor);
                ASSERT_TRUE(got.ok()) << backend->arch->name;
                EXPECT_EQ(got.phys, want.phys)
                    << backend->arch->name;
                EXPECT_EQ(got.writable, want.writable)
                    << backend->arch->name;
                EXPECT_EQ(got.user, want.user)
                    << backend->arch->name;

                // Permission faults agree too.
                const WalkResult user_write = backend->walker->walk(
                    backend->root, page.vaddr + offset,
                    AccessType::Write, Privilege::User);
                const bool allowed =
                    page.flags.writable && page.flags.user;
                EXPECT_EQ(user_write.ok(), allowed)
                    << backend->arch->name;
            }
        }
    }

    // Unmap the even pages everywhere; walks fault there and only
    // there.
    for (std::size_t i = 0; i < pages.size(); ++i) {
        if (i % 2)
            continue;
        for (auto &backend : backends)
            EXPECT_TRUE(backend->space->unmap(pages[i].vaddr))
                << backend->arch->name;
    }
    for (std::size_t i = 0; i < pages.size(); ++i) {
        for (auto &backend : backends) {
            const WalkResult result = backend->walker->walk(
                backend->root, pages[i].vaddr, AccessType::Read,
                Privilege::Supervisor);
            EXPECT_EQ(result.ok(), i % 2 == 1)
                << backend->arch->name << " page " << i;
        }
    }
}

TEST(Arch, LargeMappingsAgreeAcrossGranules)
{
    // A level-2 block on x86 (2 MiB) vs base-granule fills on ARM:
    // not the same table shape, but the same translated bytes.
    Backend x86(kX86_64);
    Backend arm(kAArch64_4K);
    const VAddr vaddr = 1ULL << 30;
    const Pfn frame = addrToPfn(64 * MiB);
    ASSERT_TRUE(x86.space->mapLarge(vaddr, frame,
                                    PageFlags{true, true}, 2));
    ASSERT_TRUE(arm.space->mapLarge(vaddr, frame,
                                    PageFlags{true, true}, 2));
    for (const std::uint64_t offset :
         {std::uint64_t{0}, std::uint64_t{0x1234},
          std::uint64_t{2 * MiB - 1}}) {
        const WalkResult a = x86.walker->walk(
            x86.root, vaddr + offset, AccessType::Write,
            Privilege::User);
        const WalkResult b = arm.walker->walk(
            arm.root, vaddr + offset, AccessType::Write,
            Privilege::User);
        ASSERT_TRUE(a.ok());
        ASSERT_TRUE(b.ok());
        EXPECT_EQ(a.phys, b.phys);
        EXPECT_EQ(a.leafLevel, 2u);
        EXPECT_EQ(b.leafLevel, 2u);
    }
}

TEST(Arch, TlbEntriesNeverAliasAcrossArchRoots)
{
    // Two address spaces that happen to share a root frame number but
    // come from different architectures must not see each other's
    // translations — the archTag keys them apart.
    Tlb tlb(64, 8);
    const Pfn root = addrToPfn(1 * MiB);
    const VAddr vaddr = 0x7f0000123000ULL;

    TlbEntry entry;
    entry.root = root;
    entry.vpn = vaddr >> pageShift;
    entry.physBase = 32 * MiB;
    entry.writable = true;
    entry.user = true;
    entry.archTag = kAArch64_4K.tag();
    tlb.insert(entry);

    // Same (root, vaddr) under the x86 tag: miss.
    EXPECT_EQ(tlb.lookup(root, vaddr, kX86_64.tag()), nullptr);
    // And under a different ARM granule's tag: miss.
    EXPECT_EQ(tlb.lookup(root, vaddr, kAArch64_16K.tag()), nullptr);
    // The minting tag hits.
    const TlbEntry *hit = tlb.lookup(root, vaddr, kAArch64_4K.tag());
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->physBase, 32 * MiB);

    // Distinct tags for every backend pair.
    for (const Arch *a : kAllArches)
        for (const Arch *b : kAllArches)
            if (a != b)
                EXPECT_NE(a->tag(), b->tag())
                    << a->name << " vs " << b->name;
}

} // namespace
} // namespace ctamem::paging
